(* Tests for the analysis core: contexts, flavors, refine sets, solver
   semantics per instruction kind, precision metrics, introspective driver
   identities, soundness properties on random programs, and cross-validation
   against the Datalog reference backend. *)

module P = Ipa_ir.Program
module Ctx = Ipa_core.Ctx
module Flavors = Ipa_core.Flavors
module Refine = Ipa_core.Refine
module Solver = Ipa_core.Solver
module Solution = Ipa_core.Solution
module Analysis = Ipa_core.Analysis
module Precision = Ipa_core.Precision
module Int_set = Ipa_support.Int_set

let check = Alcotest.check

let parse = Ipa_testlib.parse_exn

let insens = Flavors.Insensitive
let obj2 = Flavors.Object_sens { depth = 2; heap = 1 }
let call2 = Flavors.Call_site { depth = 2; heap = 1 }
let type2 = Flavors.Type_sens { depth = 2; heap = 1 }
let hyb2 = Flavors.Hybrid { depth = 2; heap = 1 }
let all_flavors = [ insens; call2; obj2; type2; hyb2; Flavors.Call_site { depth = 1; heap = 1 };
                    Flavors.Object_sens { depth = 1; heap = 0 };
                    Flavors.Object_sens { depth = 3; heap = 2 };
                    Flavors.Type_sens { depth = 1; heap = 1 };
                    Flavors.Hybrid { depth = 1; heap = 1 } ]

(* points-to set of a variable (by name), collapsed to heap names *)
let pts_of (r : Analysis.result) meth_name var_name =
  let p = r.solution.program in
  let vpt = Solution.collapsed_var_pts r.solution in
  let found = ref None in
  Array.iteri
    (fun v set ->
      let vi = P.var_info p v in
      let mi = P.meth_info p vi.var_owner in
      if mi.meth_name = meth_name && vi.var_name = var_name then found := Some set)
    vpt;
  match !found with
  | Some set -> List.map (P.heap_full_name p) (Int_set.to_sorted_list set)
  | None -> Alcotest.failf "no variable %s in %s" var_name meth_name

let run ?budget src flavor = Analysis.run_plain ?budget (parse src) flavor

(* ---------- Ctx ---------- *)

let test_ctx () =
  let t = Ctx.create () in
  check Alcotest.int "empty id" 0 Ctx.empty;
  check Alcotest.int "empty elems" 0 (Array.length (Ctx.elems t Ctx.empty));
  let e1 = Ctx.Elem.heap 3 and e2 = Ctx.Elem.invo 5 in
  let c1 = Ctx.push_trunc t Ctx.empty ~elem:e1 ~keep:2 in
  let c2 = Ctx.push_trunc t c1 ~elem:e2 ~keep:2 in
  check Alcotest.int "len 2" 2 (Array.length (Ctx.elems t c2));
  check Alcotest.bool "order newest first" true ((Ctx.elems t c2).(0) = e2);
  let c3 = Ctx.push_trunc t c2 ~elem:e1 ~keep:2 in
  check Alcotest.int "truncated" 2 (Array.length (Ctx.elems t c3));
  check Alcotest.bool "drops oldest" true ((Ctx.elems t c3).(1) = e2);
  check Alcotest.int "keep 0 is empty" Ctx.empty (Ctx.push_trunc t c2 ~elem:e1 ~keep:0);
  check Alcotest.int "trunc shorter is id" c1 (Ctx.trunc t c1 ~keep:5);
  check Alcotest.int "trunc 1" c1 (Ctx.trunc t c2 ~keep:1 |> fun x ->
    if Array.length (Ctx.elems t x) = 1 && (Ctx.elems t x).(0) = e2 then c1 else x)
  |> ignore;
  (* interning: same elements same id *)
  check Alcotest.int "hash-consed" c2 (Ctx.intern t [| e2; e1 |]);
  check Alcotest.bool "count counts" true (Ctx.count t >= 3)

let test_ctx_elems () =
  check Alcotest.bool "heap kind" true (Ctx.Elem.kind (Ctx.Elem.heap 7) = Ctx.Elem.Heap);
  check Alcotest.bool "invo kind" true (Ctx.Elem.kind (Ctx.Elem.invo 7) = Ctx.Elem.Invo);
  check Alcotest.bool "type kind" true (Ctx.Elem.kind (Ctx.Elem.ty 7) = Ctx.Elem.Type);
  check Alcotest.int "id roundtrip" 12345 (Ctx.Elem.id (Ctx.Elem.invo 12345))

(* ---------- Flavors ---------- *)

let test_flavor_names () =
  List.iter
    (fun (name, spec) ->
      check Alcotest.string "to_string" name (Flavors.to_string spec);
      match Flavors.of_string name with
      | Some spec' -> check Alcotest.string "roundtrip" name (Flavors.to_string spec')
      | None -> Alcotest.failf "of_string %s failed" name)
    Flavors.all_named;
  check Alcotest.bool "insensitive alias" true (Flavors.of_string "insensitive" = Some insens);
  check Alcotest.bool "2obj no heap" true
    (Flavors.of_string "2obj" = Some (Flavors.Object_sens { depth = 2; heap = 0 }));
  check Alcotest.bool "3callH2" true
    (Flavors.of_string "3callH2" = Some (Flavors.Call_site { depth = 3; heap = 2 }));
  check Alcotest.bool "garbage" true (Flavors.of_string "2frobH" = None);
  check Alcotest.bool "empty" true (Flavors.of_string "" = None);
  check Alcotest.bool "0obj invalid" true (Flavors.of_string "0objH" = None)

let test_strategies () =
  let p = parse Ipa_testlib.boxes_src in
  let t = Ctx.create () in
  let insens_s = Flavors.strategy p insens in
  check Alcotest.int "insens record" Ctx.empty (insens_s.record t ~heap:0 ~ctx:5);
  check Alcotest.int "insens merge" Ctx.empty
    (insens_s.merge t ~heap:0 ~hctx:0 ~invo:0 ~caller:5);
  let call_s = Flavors.strategy p (Flavors.Call_site { depth = 2; heap = 1 }) in
  let c1 = call_s.merge t ~heap:0 ~hctx:0 ~invo:7 ~caller:Ctx.empty in
  check Alcotest.bool "call pushes invo" true ((Ctx.elems t c1).(0) = Ctx.Elem.invo 7);
  let c2 = call_s.merge_static t ~invo:8 ~caller:c1 in
  check Alcotest.int "call depth 2" 2 (Array.length (Ctx.elems t c2));
  let c3 = call_s.merge_static t ~invo:9 ~caller:c2 in
  check Alcotest.bool "truncates" true
    (Array.length (Ctx.elems t c3) = 2 && (Ctx.elems t c3).(1) = Ctx.Elem.invo 8);
  check Alcotest.bool "heap ctx prefix" true
    (Ctx.elems t (call_s.record t ~heap:0 ~ctx:c2) = [| Ctx.Elem.invo 8 |]);
  let obj_s = Flavors.strategy p obj2 in
  let oc = obj_s.merge t ~heap:3 ~hctx:Ctx.empty ~invo:0 ~caller:Ctx.empty in
  check Alcotest.bool "obj pushes heap" true ((Ctx.elems t oc).(0) = Ctx.Elem.heap 3);
  check Alcotest.int "obj static keeps caller" oc (obj_s.merge_static t ~invo:0 ~caller:oc);
  let ty_s = Flavors.strategy p type2 in
  let tc = ty_s.merge t ~heap:0 ~hctx:Ctx.empty ~invo:0 ~caller:Ctx.empty in
  check Alcotest.bool "type elem is class" true
    (Ctx.Elem.kind (Ctx.elems t tc).(0) = Ctx.Elem.Type);
  let hyb_s = Flavors.strategy p hyb2 in
  let hc = hyb_s.merge_static t ~invo:4 ~caller:oc in
  check Alcotest.bool "hybrid static pushes invo" true
    ((Ctx.elems t hc).(0) = Ctx.Elem.invo 4);
  let hrec = hyb_s.record t ~heap:0 ~ctx:hc in
  check Alcotest.bool "hybrid record strips invos" true
    (Array.for_all (fun e -> Ctx.Elem.kind e <> Ctx.Elem.Invo) (Ctx.elems t hrec));
  Alcotest.check_raises "bad depth" (Invalid_argument "Flavors.object_sens: depth must be positive")
    (fun () -> ignore (Flavors.strategy p (Flavors.Object_sens { depth = 0; heap = 1 })))

(* ---------- Refine ---------- *)

let test_refine () =
  let key = Refine.pack_site ~invo:123 ~meth:456 in
  check (Alcotest.pair Alcotest.int Alcotest.int) "unpack" (123, 456) (Refine.unpack_site key);
  check Alcotest.bool "none refines nothing" false (Refine.refine_object Refine.None_ 0);
  check Alcotest.bool "none sites" false (Refine.refine_site Refine.None_ ~invo:0 ~meth:0);
  let skip_objects = Int_set.of_list [ 3 ] in
  let skip_sites = Int_set.of_list [ Refine.pack_site ~invo:1 ~meth:2 ] in
  let r = Refine.All_except { skip_objects; skip_sites } in
  check Alcotest.bool "skipped object" false (Refine.refine_object r 3);
  check Alcotest.bool "other object" true (Refine.refine_object r 4);
  check Alcotest.bool "skipped site" false (Refine.refine_site r ~invo:1 ~meth:2);
  check Alcotest.bool "other site" true (Refine.refine_site r ~invo:1 ~meth:3);
  check (Alcotest.pair Alcotest.int Alcotest.int) "counts" (1, 1) (Refine.skipped_counts r);
  match Refine.pack_site ~invo:0 ~meth:(1 lsl 40) with
  | _ -> Alcotest.fail "expected range error"
  | exception Invalid_argument _ -> ()

(* ---------- solver semantics per instruction ---------- *)

let test_boxes_conflation () =
  let r = run Ipa_testlib.boxes_src insens in
  check (Alcotest.list Alcotest.string) "insens ra conflated"
    [ "Main::main/new A#2"; "Main::main/new B#3" ]
    (pts_of r "main" "ra");
  let prec = Precision.compute r.solution in
  check Alcotest.int "insens may-fail" 1 prec.may_fail_casts;
  let r2 = run Ipa_testlib.boxes_src obj2 in
  check (Alcotest.list Alcotest.string) "2objH ra precise" [ "Main::main/new A#2" ]
    (pts_of r2 "main" "ra");
  check (Alcotest.list Alcotest.string) "2objH rb precise" [ "Main::main/new B#3" ]
    (pts_of r2 "main" "rb");
  check Alcotest.int "2objH no may-fail" 0 (Precision.compute r2.solution).may_fail_casts

let test_cast_filtering () =
  let src = {|
class Object { }
class A extends Object { }
class B extends A { }
class C extends Object { }
class Main {
  static method main/0 () {
    var x, a, b, c;
    x = new A;
    x = new B;
    x = new C;
    a = (A) x;
    b = (B) x;
    c = (C) x;
  }
}
entry Main::main/0;
|} in
  let r = run src insens in
  check (Alcotest.list Alcotest.string) "A admits A and B"
    [ "Main::main/new A#0"; "Main::main/new B#1" ]
    (pts_of r "main" "a");
  check (Alcotest.list Alcotest.string) "B admits B" [ "Main::main/new B#1" ]
    (pts_of r "main" "b");
  check (Alcotest.list Alcotest.string) "C admits C" [ "Main::main/new C#2" ]
    (pts_of r "main" "c")

let test_static_fields () =
  let src = {|
class Object { }
class A extends Object { }
class G {
  static field cell;
}
class Main {
  static method put/0 () { var a; a = new A; G::cell = a; }
  static method main/0 () {
    var t;
    Main::put();
    t = G::cell;
  }
}
entry Main::main/0;
|} in
  let r = run src obj2 in
  check (Alcotest.list Alcotest.string) "flows through static" [ "Main::put/new A#0" ]
    (pts_of r "main" "t")

let test_dispatch_and_this () =
  let src = {|
class Object { }
class A extends Object {
  method who/0 () { var s; s = new Object; return s; }
}
class B extends A {
  method who/0 () { var s; s = this; return s; }
}
class Main {
  static method main/0 () {
    var a, b, ra, rb;
    a = new A;
    b = new B;
    ra = a.who();
    rb = b.who();
  }
}
entry Main::main/0;
|} in
  let r = run src insens in
  check (Alcotest.list Alcotest.string) "A::who allocates" [ "A::who/new Object#0" ]
    (pts_of r "main" "ra");
  check (Alcotest.list Alcotest.string) "B::who returns this" [ "Main::main/new B#1" ]
    (pts_of r "main" "rb")

let test_unreachable_not_analyzed () =
  let src = {|
class Object { }
class A extends Object { }
class Main {
  static method dead/0 () { var d; d = new A; }
  static method main/0 () { var x; x = new A; }
}
entry Main::main/0;
|} in
  let r = run src insens in
  let reach = Solution.reachable_meths r.solution in
  check Alcotest.int "only main" 1 (Int_set.cardinal reach);
  let st = Solution.stats r.solution in
  check Alcotest.int "one tuple" 1 st.vpt_tuples

let test_recursion_terminates () =
  let src = {|
class Object { }
class A extends Object {
  method spin/1 (x) { var r; r = this.spin(x); return r; }
}
class Main {
  static method main/0 () { var a, o, r; a = new A; o = new Object; r = a.spin(o); }
}
entry Main::main/0;
|} in
  let r = run src call2 in
  check Alcotest.bool "terminates" true (r.solution.outcome = Solution.Complete)

let test_interface_dispatch () =
  let src = {|
class Object { }
interface I { method go/0; }
class A extends Object implements I {
  method go/0 () { return this; }
}
class Main {
  static method main/0 () { var a, r; a = new A; r = a.go(); }
}
entry Main::main/0;
|} in
  let r = run src insens in
  check (Alcotest.list Alcotest.string) "dispatches to impl" [ "Main::main/new A#0" ]
    (pts_of r "main" "r")

let test_budget_timeout () =
  let r = run ~budget:5 Ipa_testlib.boxes_src insens in
  check Alcotest.bool "timed out" true r.timed_out;
  check Alcotest.bool "flagged" true (r.solution.outcome = Solution.Budget_exceeded)

(* ---------- precision metrics ---------- *)

let test_precision_counts () =
  let r = run Ipa_testlib.boxes_src insens in
  let prec = Precision.compute r.solution in
  (* set and get each have one reachable call site pair per receiver, but
     site-level: both b1.set and b2.set resolve to the single Box::set. *)
  check Alcotest.int "no poly sites" 0 prec.poly_vcalls;
  check Alcotest.int "reachable" 3 prec.reachable_methods (* main, set, get *);
  check Alcotest.int "one may-fail" 1 prec.may_fail_casts;
  check Alcotest.int "call edges" 4 prec.call_edges

let test_poly_count () =
  let src = {|
class Object { }
class A extends Object { method go/0 () { return this; } }
class B extends Object { method go/0 () { return this; } }
class Main {
  static method main/0 () {
    var x, r;
    x = new A;
    x = new B;
    r = x.go();
  }
}
entry Main::main/0;
|} in
  let r = run src insens in
  check Alcotest.int "one poly site" 1 (Precision.compute r.solution).poly_vcalls;
  check Alcotest.int "two edges" 2 (Precision.compute r.solution).call_edges

(* ---------- solution projections ---------- *)

let test_solution_consistency () =
  let r = run Ipa_testlib.boxes_src obj2 in
  let s = r.solution in
  (* collapsed var-points-to equals the collapse of the full relation *)
  let collapsed = Solution.collapsed_var_pts s in
  let recomputed = Array.map (fun _ -> Int_set.create ()) collapsed in
  Solution.iter_var_pts s (fun ~var ~ctx:_ ~heap ~hctx:_ ->
      ignore (Int_set.add recomputed.(var) heap));
  Array.iteri
    (fun v set ->
      if not (Int_set.equal set recomputed.(v)) then Alcotest.failf "collapse mismatch at %d" v)
    collapsed;
  (* stats agree with iteration counts *)
  let st = Solution.stats s in
  let n = ref 0 in
  Solution.iter_var_pts s (fun ~var:_ ~ctx:_ ~heap:_ ~hctx:_ -> incr n);
  check Alcotest.int "vpt tuples" st.vpt_tuples !n;
  let n = ref 0 in
  Solution.iter_cg s (fun ~invo:_ ~caller:_ ~meth:_ ~callee:_ -> incr n);
  check Alcotest.int "cg edges" st.cg_edges !n

(* ---------- solution self-check ---------- *)

let assert_sound what (s : Solution.t) =
  match Solution.self_check s with
  | [] -> ()
  | errs -> Alcotest.failf "%s: %d violation(s): %s" what (List.length errs) (List.hd errs)

let test_self_check_flavors () =
  let p = parse Ipa_testlib.boxes_src in
  List.iter
    (fun flavor ->
      assert_sound (Flavors.to_string flavor) (Analysis.run_plain p flavor).solution)
    all_flavors

let test_self_check_random () =
  for seed = 300 to 309 do
    let p = Ipa_testlib.random_program seed in
    List.iter
      (fun flavor ->
        assert_sound
          (Printf.sprintf "seed %d %s" seed (Flavors.to_string flavor))
          (Analysis.run_plain p flavor).solution)
      [ insens; obj2; call2; type2; hyb2 ]
  done

let test_self_check_partial () =
  (* All invariants except entry-point coverage are insertion-time
     properties, so they must hold on budget-exceeded partial fixpoints of
     any size. *)
  List.iter
    (fun budget ->
      let r = run ~budget Ipa_testlib.boxes_src obj2 in
      assert_sound (Printf.sprintf "budget %d" budget) r.solution)
    [ 1; 3; 7; 12; 20; 35; 60; 100 ]

let test_self_check_detects_corruption () =
  (* Mutating a points-to set behind the solution's back must be caught:
     the validator is not a tautology. *)
  let r = run Ipa_testlib.boxes_src insens in
  let s = r.solution in
  let bogus_obj = Ipa_support.Pair_tbl.count s.objs + 7 in
  let corrupted = ref false in
  for n = 0 to Ipa_support.Dynarr.length s.pts - 1 do
    if not !corrupted then
      match Ipa_support.Dynarr.get s.pts n with
      | Some set ->
        ignore (Int_set.add set bogus_obj);
        corrupted := true
      | None -> ()
  done;
  check Alcotest.bool "corrupted a set" true !corrupted;
  check Alcotest.bool "violation reported" true (Solution.self_check s <> [])

(* ---------- introspective driver identities ---------- *)

let test_refine_all_equals_plain () =
  (* default=insens + refined=X + "refine everything" must equal plain X. *)
  let p = parse Ipa_testlib.boxes_src in
  List.iter
    (fun flavor ->
      let plain = Analysis.run_plain p flavor in
      let config =
        {
          Solver.default_strategy = Flavors.strategy p insens;
          refined_strategy = Flavors.strategy p flavor;
          refine =
            Refine.All_except
              { skip_objects = Int_set.create (); skip_sites = Int_set.create () };
          budget = 0;
          order = Solver.Lifo;
          collapse_cycles = true;
          field_sensitive = true;
          shards = 1;
        }
      in
      let refined = Solver.run p config in
      check (Alcotest.list Alcotest.string)
        (Flavors.to_string flavor ^ " refine-all = plain")
        (Ipa_testlib.canon_native plain.solution)
        (Ipa_testlib.canon_native refined))
    [ obj2; call2; type2 ]

let test_skip_all_equals_insens () =
  (* Skipping every element must reduce to the context-insensitive result. *)
  let p = parse Ipa_testlib.boxes_src in
  let plain = Analysis.run_plain p insens in
  let skip_objects = Int_set.create () in
  for h = 0 to P.n_heaps p - 1 do
    ignore (Int_set.add skip_objects h)
  done;
  let skip_sites = Int_set.create () in
  for invo = 0 to P.n_invos p - 1 do
    for m = 0 to P.n_meths p - 1 do
      ignore (Int_set.add skip_sites (Refine.pack_site ~invo ~meth:m))
    done
  done;
  let config =
    {
      Solver.default_strategy = Flavors.strategy p insens;
      refined_strategy = Flavors.strategy p obj2;
      refine = Refine.All_except { skip_objects; skip_sites };
      budget = 0;
      order = Solver.Lifo;
      collapse_cycles = true;
      field_sensitive = true;
      shards = 1;
    }
  in
  let skipped = Solver.run p config in
  check (Alcotest.list Alcotest.string) "skip-all = insens"
    (Ipa_testlib.canon_native plain.solution)
    (Ipa_testlib.canon_native skipped)

(* ---------- soundness-style properties on random programs ---------- *)

let subset_of_insens flavor seed =
  let p = Ipa_testlib.random_program seed in
  let base = Analysis.run_plain p insens in
  let refined = Analysis.run_plain p flavor in
  let base_vpt = Solution.collapsed_var_pts base.solution in
  let ref_vpt = Solution.collapsed_var_pts refined.solution in
  Array.iteri
    (fun v set ->
      if not (Int_set.subset set base_vpt.(v)) then
        Alcotest.failf "seed %d %s: var %d gained facts over insens" seed
          (Flavors.to_string flavor) v)
    ref_vpt;
  if not (Int_set.subset (Solution.reachable_meths refined.solution)
            (Solution.reachable_meths base.solution))
  then Alcotest.failf "seed %d: reachable grew" seed;
  let bp = Precision.compute base.solution in
  let rp = Precision.compute refined.solution in
  if rp.poly_vcalls > bp.poly_vcalls then Alcotest.failf "seed %d: poly grew" seed;
  if rp.may_fail_casts > bp.may_fail_casts then Alcotest.failf "seed %d: casts grew" seed;
  if rp.reachable_methods > bp.reachable_methods then
    Alcotest.failf "seed %d: reach grew" seed

let test_refinement_soundness () =
  for seed = 100 to 109 do
    List.iter (fun flavor -> subset_of_insens flavor seed) [ obj2; call2; type2; hyb2 ]
  done

let test_introspective_soundness () =
  for seed = 100 to 105 do
    let p = Ipa_testlib.random_program seed in
    let base = Analysis.run_plain p insens in
    let base_vpt = Solution.collapsed_var_pts base.solution in
    List.iter
      (fun h ->
        let ir = Analysis.run_introspective p obj2 h in
        let second_vpt = Solution.collapsed_var_pts ir.second.solution in
        Array.iteri
          (fun v set ->
            if not (Int_set.subset set base_vpt.(v)) then
              Alcotest.failf "seed %d: introspective unsound at var %d" seed v)
          second_vpt)
      [ Ipa_core.Heuristics.default_a; Ipa_core.Heuristics.default_b ]
  done

(* ---------- client-driven baseline ---------- *)

let test_client_driven_answers_query () =
  (* Slicing from the cast's source must recover full precision for that
     cast while refining only a handful of elements. *)
  let p = parse Ipa_testlib.boxes_src in
  let base = Analysis.run_plain p insens in
  let queries = Ipa_core.Client_driven.cast_queries base.solution in
  check Alcotest.int "one cast query" 1 (List.length queries);
  let src, ty = List.hd queries in
  let cd = Analysis.run_client_driven p obj2 [ src ] in
  let vpt = Solution.collapsed_var_pts cd.cd_second.solution in
  let may_fail =
    Int_set.exists
      (fun h -> not (P.subtype p ~sub:(P.heap_info p h).heap_class ~super:ty))
      vpt.(src)
  in
  check Alcotest.bool "query cast proven safe" false may_fail;
  let sites, objs = Ipa_core.Client_driven.selection_size base.solution cd.cd_refine in
  check Alcotest.bool "selection non-trivial" true (sites > 0 && objs > 0)

let test_client_driven_sound () =
  (* Query-driven results stay within the insensitive over-approximation. *)
  for seed = 700 to 705 do
    let p = Ipa_testlib.random_program seed in
    let base = Analysis.run_plain p insens in
    let base_vpt = Solution.collapsed_var_pts base.solution in
    let query = [ 0; P.n_vars p / 2 ] in
    let cd = Analysis.run_client_driven p obj2 query in
    let vpt = Solution.collapsed_var_pts cd.cd_second.solution in
    Array.iteri
      (fun v set ->
        if not (Int_set.subset set base_vpt.(v)) then
          Alcotest.failf "seed %d: client-driven unsound at var %d" seed v)
      vpt
  done

let test_client_driven_all_points_is_full () =
  (* Querying every variable refines everything: identical to the plain
     context-sensitive analysis. *)
  for seed = 710 to 714 do
    let p = Ipa_testlib.random_program seed in
    let everything = List.init (P.n_vars p) Fun.id in
    let cd = Analysis.run_client_driven p obj2 everything in
    let full = Analysis.run_plain p obj2 in
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "seed %d all-points = full" seed)
      (Ipa_testlib.canon_native full.solution)
      (Ipa_testlib.canon_native cd.cd_second.solution)
  done

(* ---------- cross-validation against the Datalog backend ---------- *)

let cross_validate p what =
  List.iter
    (fun flavor ->
      let native = Analysis.run_plain p flavor in
      let strategy = Flavors.strategy p flavor in
      let datalog = Ipa_core.Datalog_backend.run_plain p strategy in
      check (Alcotest.list Alcotest.string)
        (Printf.sprintf "%s/%s" what (Flavors.to_string flavor))
        (Ipa_testlib.canon_native native.solution)
        (Ipa_testlib.canon_datalog p datalog))
    all_flavors

let test_cross_boxes () = cross_validate (parse Ipa_testlib.boxes_src) "boxes"

let test_cross_random () =
  for seed = 200 to 207 do
    cross_validate (Ipa_testlib.random_program seed) (Printf.sprintf "seed%d" seed)
  done

let test_cross_benchmark () =
  let spec = Option.get (Ipa_synthetic.Dacapo.find "chart") in
  cross_validate (Ipa_synthetic.Dacapo.build ~scale:0.02 spec) "chart-2pct"

let test_cross_introspective () =
  (* The refine machinery must agree across engines too. *)
  for seed = 210 to 213 do
    let p = Ipa_testlib.random_program seed in
    let base = Analysis.run_plain p insens in
    let metrics = Ipa_core.Introspection.compute base.solution in
    List.iter
      (fun h ->
        let refine = Ipa_core.Heuristics.select base.solution metrics h in
        let config =
          {
            Solver.default_strategy = Flavors.strategy p insens;
            refined_strategy = Flavors.strategy p obj2;
            refine;
            budget = 0;
            order = Solver.Lifo;
            collapse_cycles = true;
            field_sensitive = true;
            shards = 1;
          }
        in
        let native = Solver.run p config in
        let datalog =
          Ipa_core.Datalog_backend.run p
            ~default:(Flavors.strategy p insens)
            ~refined:(Flavors.strategy p obj2)
            ~refine ()
        in
        check (Alcotest.list Alcotest.string)
          (Printf.sprintf "introspective seed %d" seed)
          (Ipa_testlib.canon_native native)
          (Ipa_testlib.canon_datalog p datalog))
      [ Ipa_core.Heuristics.default_a; Ipa_core.Heuristics.default_b ]
  done

let test_pack_edge_bounds () =
  (* Round trip across the whole filter-spec field, typed failure beyond. *)
  List.iter
    (fun spec ->
      let packed = Solver.pack_edge ~dst:12345 ~spec in
      check Alcotest.int "dst" 12345 (Solver.edge_dst packed);
      check Alcotest.int "spec" spec (Solver.edge_spec packed))
    [ 0; 1; Solver.filter_mask ];
  let expect_invalid name spec =
    match Solver.pack_edge ~dst:1 ~spec with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
      check Alcotest.bool (name ^ ": message names pack_edge") true
        (String.length msg > 0
        && String.sub msg 0 (min 15 (String.length msg)) = "Solver.pack_edg")
  in
  expect_invalid "one past the field" (Solver.filter_mask + 1);
  expect_invalid "negative spec" (-1)

let () =
  Alcotest.run "core"
    [
      ( "ctx",
        [
          Alcotest.test_case "contexts" `Quick test_ctx;
          Alcotest.test_case "elements" `Quick test_ctx_elems;
        ] );
      ( "flavors",
        [
          Alcotest.test_case "names" `Quick test_flavor_names;
          Alcotest.test_case "strategies" `Quick test_strategies;
        ] );
      ("refine", [ Alcotest.test_case "sets" `Quick test_refine ]);
      ( "solver",
        [
          Alcotest.test_case "boxes conflation" `Quick test_boxes_conflation;
          Alcotest.test_case "cast filtering" `Quick test_cast_filtering;
          Alcotest.test_case "static fields" `Quick test_static_fields;
          Alcotest.test_case "dispatch and this" `Quick test_dispatch_and_this;
          Alcotest.test_case "unreachable code" `Quick test_unreachable_not_analyzed;
          Alcotest.test_case "recursion" `Quick test_recursion_terminates;
          Alcotest.test_case "interface dispatch" `Quick test_interface_dispatch;
          Alcotest.test_case "budget" `Quick test_budget_timeout;
          Alcotest.test_case "pack_edge bounds" `Quick test_pack_edge_bounds;
        ] );
      ( "precision",
        [
          Alcotest.test_case "counts" `Quick test_precision_counts;
          Alcotest.test_case "poly sites" `Quick test_poly_count;
        ] );
      ("solution", [ Alcotest.test_case "consistency" `Quick test_solution_consistency ]);
      ( "self-check",
        [
          Alcotest.test_case "all flavors" `Quick test_self_check_flavors;
          Alcotest.test_case "random programs" `Quick test_self_check_random;
          Alcotest.test_case "partial fixpoints" `Quick test_self_check_partial;
          Alcotest.test_case "detects corruption" `Quick test_self_check_detects_corruption;
        ] );
      ( "introspective identities",
        [
          Alcotest.test_case "refine-all = plain" `Quick test_refine_all_equals_plain;
          Alcotest.test_case "skip-all = insens" `Quick test_skip_all_equals_insens;
        ] );
      ( "properties",
        [
          Alcotest.test_case "refinement soundness" `Quick test_refinement_soundness;
          Alcotest.test_case "introspective soundness" `Quick test_introspective_soundness;
        ] );
      ( "client-driven",
        [
          Alcotest.test_case "answers the query" `Quick test_client_driven_answers_query;
          Alcotest.test_case "sound" `Quick test_client_driven_sound;
          Alcotest.test_case "all-points equals full" `Quick
            test_client_driven_all_points_is_full;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "boxes" `Quick test_cross_boxes;
          Alcotest.test_case "random programs" `Quick test_cross_random;
          Alcotest.test_case "benchmark" `Quick test_cross_benchmark;
          Alcotest.test_case "introspective" `Quick test_cross_introspective;
        ] );
    ]
