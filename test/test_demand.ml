(* Demand-driven solving: the slice answer contract.

   - Property: on random programs, under every context-sensitivity flavor,
     every demand-eligible query answered through Demand.eval renders
     byte-identical to the same query against a full unbudgeted solve.
   - The slice memo: repeated demands hit; distinct root sets miss.
   - The cache layer: a second Demand value sharing the same on-disk cache
     serves its first demand from the published slice snapshot. *)

module P = Ipa_ir.Program
module Flavors = Ipa_core.Flavors
module Demand = Ipa_query.Demand
module Engine = Ipa_query.Engine
module Query = Ipa_query.Query

let check = Alcotest.check

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let flavors =
  Flavors.
    [
      Insensitive;
      Object_sens { depth = 2; heap = 1 };
      Type_sens { depth = 2; heap = 1 };
      Call_site { depth = 2; heap = 1 };
    ]

(* Every eligible query form the program's entities can instantiate, with
   per-form caps so a property iteration stays fast. *)
let eligible_queries p =
  let take cap n of_i = List.init (min cap n) of_i in
  let var v = P.var_full_name p v in
  let meth m = P.meth_full_name p m in
  let entry = meth (List.hd (P.entries p)) in
  List.concat
    [
      take 12 (P.n_vars p) (fun v -> Query.Pts (var v));
      take 6 (P.n_heaps p) (fun h -> Query.Pointed_by (P.heap_full_name p h));
      take 6 (max 0 (P.n_vars p - 1)) (fun v -> Query.Alias (var v, var (v + 1)));
      take 6 (P.n_invos p) (fun i -> Query.Callees (P.invo_info p i).invo_name);
      take 4 (P.n_meths p) (fun m -> Query.Callers (meth m));
      take 4 (P.n_meths p) (fun m -> Query.Reach (entry, meth m));
      take 6
        (min (P.n_heaps p) (P.n_fields p))
        (fun i -> Query.Fieldpts (P.heap_full_name p i, P.field_full_name p i));
    ]

let demand_for p flavor =
  Demand.create ~program:p
    ~label:(Flavors.to_string flavor)
    (Ipa_core.Solver.plain p (Flavors.strategy p flavor))

(* ---------- demand answers == full-solve answers ---------- *)

let test_demand_matches_full =
  qtest ~count:6 "demand answers equal the full solve, all flavors"
    (QCheck2.Gen.int_range 2100 2199)
    (fun seed ->
      let p = Ipa_testlib.random_program seed in
      let queries = eligible_queries p in
      List.iter
        (fun flavor ->
          let full = Ipa_core.Analysis.run_plain p flavor in
          let full_engine = Engine.create full.solution in
          let demand = demand_for p flavor in
          List.iter
            (fun q ->
              if not (Demand.eligible q) then
                QCheck2.Test.fail_reportf "%s not eligible" (Query.to_string q);
              match Demand.eval demand q with
              | None ->
                QCheck2.Test.fail_reportf "eval returned None for %s" (Query.to_string q)
              | Some served ->
                let expected = Engine.render_text q (Engine.eval full_engine q) in
                let got = Engine.render_text q served.Demand.result in
                if got <> expected then
                  QCheck2.Test.fail_reportf
                    "seed %d %s: demand diverged on %s\n  full:   %s\n  demand: %s" seed
                    (Flavors.to_string flavor) (Query.to_string q) expected got)
            queries)
        flavors;
      true)

let test_ineligible_forms () =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let demand = demand_for p Flavors.Insensitive in
  List.iter
    (fun q ->
      check Alcotest.bool (Query.to_string q ^ " not eligible") false (Demand.eligible q);
      check Alcotest.bool (Query.to_string q ^ " eval is None") true
        (Demand.eval demand q = None))
    [ Query.Taint None; Query.Stats ];
  check Alcotest.int "no counters moved" 0 (Demand.stats demand).Demand.demand_queries

(* ---------- the slice memo ---------- *)

let test_memo_hit_rate () =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let demand = demand_for p (Flavors.Object_sens { depth = 2; heap = 1 }) in
  let q = Query.Pts "Main::main/0$ra" in
  ignore (Option.get (Demand.eval demand q));
  let s1 = Demand.stats demand in
  check Alcotest.int "first demand solves" 0 s1.Demand.slice_hits;
  check Alcotest.int "one demand query" 1 s1.Demand.demand_queries;
  check Alcotest.bool "slice is non-empty" true (s1.Demand.slice_nodes > 0);
  ignore (Option.get (Demand.eval demand q));
  let s2 = Demand.stats demand in
  check Alcotest.int "repeat hits the memo" 1 s2.Demand.slice_hits;
  check Alcotest.int "hit adds no slice nodes" s1.Demand.slice_nodes s2.Demand.slice_nodes;
  (* same root set through a different form still hits *)
  ignore (Option.get (Demand.eval demand (Query.Alias ("Main::main/0$ra", "Main::main/0$ra"))));
  check Alcotest.int "same roots, different form: hit" 2
    (Demand.stats demand).Demand.slice_hits;
  (* a different root set misses and solves its own slice *)
  ignore (Option.get (Demand.eval demand (Query.Pts "Main::main/0$rb")));
  let s3 = Demand.stats demand in
  check Alcotest.int "new roots miss" 2 s3.Demand.slice_hits;
  check Alcotest.int "four demand queries" 4 s3.Demand.demand_queries

(* ---------- cache round-trip ---------- *)

let test_cache_round_trip () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
      let flavor = Flavors.Object_sens { depth = 2; heap = 1 } in
      let config = Ipa_core.Solver.plain p (Flavors.strategy p flavor) in
      let q = Query.Pts "Main::main/0$rb" in
      let cache1 = Ipa_harness.Cache.create ~dir () in
      let d1 = Demand.create ~cache:cache1 ~program:p ~label:"2objH" config in
      let served1 = Option.get (Demand.eval d1 q) in
      check Alcotest.bool "first instance solves" false served1.Demand.hit;
      (* a fresh Demand value over a fresh cache handle on the same directory
         must find the published slice snapshot instead of solving *)
      let cache2 = Ipa_harness.Cache.create ~dir () in
      let d2 = Demand.create ~cache:cache2 ~program:p ~label:"2objH" config in
      let served2 = Option.get (Demand.eval d2 q) in
      check Alcotest.bool "second instance hits the disk cache" true served2.Demand.hit;
      check Alcotest.int "hit counted" 1 (Demand.stats d2).Demand.slice_hits;
      let full = Ipa_core.Analysis.run_plain p flavor in
      let expected = Engine.render_text q (Engine.eval (Engine.create full.solution) q) in
      check Alcotest.string "cached answer identical" expected
        (Engine.render_text q served2.Demand.result))

let () =
  Alcotest.run "demand"
    [
      ( "answers",
        [
          test_demand_matches_full;
          Alcotest.test_case "ineligible forms" `Quick test_ineligible_forms;
        ] );
      ("memo", [ Alcotest.test_case "hit rate" `Quick test_memo_hit_rate ]);
      ("cache", [ Alcotest.test_case "round trip" `Quick test_cache_round_trip ]);
    ]
