(* Tests for the experiment harness at tiny scale. *)

module E = Ipa_harness.Experiments
module Config = Ipa_harness.Config
module Flavors = Ipa_core.Flavors

let check = Alcotest.check

let tiny : Config.t =
  { scale = 0.02; budget = 2_000_000; jobs = 1; cache = Ipa_harness.Cache.create () }

let test_config_default () =
  check Alcotest.bool "scale" true (Config.default.scale = 1.0);
  check Alcotest.int "budget" 10_000_000 Config.default.budget;
  check Alcotest.bool "jobs" true (Config.default.jobs >= 1)

let test_fig1 () =
  let runs = E.Fig1.compute tiny in
  check Alcotest.int "two runs per benchmark" 18 (List.length runs);
  List.iter
    (fun (r : E.run) ->
      check Alcotest.bool (r.bench ^ " completes at tiny scale") false r.timed_out;
      check Alcotest.bool "precision present" true (r.precision <> None))
    runs;
  let analyses = List.sort_uniq compare (List.map (fun (r : E.run) -> r.analysis) runs) in
  check (Alcotest.list Alcotest.string) "analyses" [ "2objH"; "insens" ] analyses

let test_fig4 () =
  let rows = E.Fig4.compute tiny in
  check Alcotest.int "7 + average" 8 (List.length rows);
  let last = List.nth rows 7 in
  check Alcotest.string "average row" "average" last.bench;
  List.iter
    (fun (r : E.Fig4.row) ->
      let in_range x = x >= 0.0 && x <= 100.0 in
      if
        not
          (in_range r.a_sites_pct && in_range r.b_sites_pct && in_range r.a_objects_pct
          && in_range r.b_objects_pct)
      then Alcotest.failf "%s: percentage out of range" r.bench)
    rows;
  (* the average row is the mean of the others *)
  let body = List.filteri (fun i _ -> i < 7) rows in
  let mean f = List.fold_left (fun a r -> a +. f r) 0.0 body /. 7.0 in
  check (Alcotest.float 0.001) "average correct" (mean (fun r -> r.E.Fig4.a_sites_pct))
    last.a_sites_pct

let test_figs567 () =
  let runs = E.Figs567.compute tiny (Flavors.Object_sens { depth = 2; heap = 1 }) in
  check Alcotest.int "4 runs x 6 benchmarks" 24 (List.length runs);
  let labels =
    List.sort_uniq compare (List.map (fun (r : E.run) -> r.analysis) runs)
  in
  check
    (Alcotest.list Alcotest.string)
    "labels"
    [ "2objH"; "2objH-IntroA"; "2objH-IntroB"; "insens" ]
    labels

let test_run_to_row () =
  let row =
    E.run_to_row
      {
        bench = "x";
        analysis = "2objH";
        seconds = 1.5;
        derivations = 42;
        timed_out = false;
        precision = None;
        tainted_sinks = Some 3;
        counters = Ipa_core.Solution.zero_counters;
      }
  in
  check (Alcotest.list Alcotest.string) "row" [ "2objH"; "1.50"; "42"; "-"; "-"; "-"; "3" ] row;
  let row =
    E.run_to_row
      {
        bench = "x";
        analysis = "2objH";
        seconds = 99.0;
        derivations = 7;
        timed_out = true;
        precision = None;
        tainted_sinks = None;
        counters = Ipa_core.Solution.zero_counters;
      }
  in
  check Alcotest.string "timeout cell" "timeout" (List.nth row 1);
  check Alcotest.string "timeout taint cell" "-" (List.nth row 6)

let test_taint_study () =
  let runs = E.Taint_study.compute tiny in
  check Alcotest.int "four runs" 4 (List.length runs);
  let by label = List.find (fun (r : E.run) -> r.analysis = label) runs in
  let sinks label =
    match (by label).tainted_sinks with
    | Some n -> n
    | None -> Alcotest.failf "%s timed out at tiny scale" label
  in
  (* Context-insensitively the hot secret reaches every client's sink;
     every 2objH variant pins it to the one genuinely hot sink. *)
  check Alcotest.bool "insens conflates"
    true
    (sinks "insens" >= E.Taint_study.clients tiny);
  check Alcotest.int "2objH exact" 1 (sinks "2objH");
  check Alcotest.int "IntroA exact" 1 (sinks "2objH-IntroA");
  check Alcotest.int "IntroB exact" 1 (sinks "2objH-IntroB")

let test_ablation_smoke () =
  (* The ablation studies must run end-to-end at tiny scale. *)
  let cfg : Config.t =
    { scale = 0.02; budget = 1_000_000; jobs = 2; cache = Ipa_harness.Cache.create () }
  in
  Ipa_harness.Ablation.grid cfg;
  Ipa_harness.Ablation.components cfg

let test_timeouts_render () =
  (* With an absurdly small budget everything times out and compute still
     returns well-formed rows. *)
  let cfg : Config.t =
    { scale = 0.02; budget = 10; jobs = 1; cache = Ipa_harness.Cache.create () }
  in
  let runs = E.Fig1.compute cfg in
  List.iter
    (fun (r : E.run) ->
      check Alcotest.bool "timed out" true r.timed_out;
      check Alcotest.bool "no precision" true (r.precision = None))
    runs

(* ---------- cache graceful degradation ----------

   An unusable --cache-dir must degrade to memory-only operation: no
   exception, the failure counted as a disk error, and solves still
   deduplicated by the in-memory layer. Permission-based fixtures don't
   work here (the suite may run as root, which bypasses mode bits), so
   the unusable directories are paths through regular files. *)

let degraded_cache_roundtrip cache =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let cold, _ = Ipa_harness.Cache.base_pass cache ~budget:0 p in
  let warm, _ = Ipa_harness.Cache.base_pass cache ~budget:0 p in
  check Alcotest.bool "solves fine without a disk layer" false cold.timed_out;
  check Alcotest.bool "second solve is an in-memory hit" true
    (Ipa_testlib.canon_native cold.solution = Ipa_testlib.canon_native warm.solution);
  Ipa_harness.Cache.stats cache

let test_cache_dir_is_a_file () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let file = Filename.concat dir "occupied" in
      Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc "not a dir\n");
      let cache = Ipa_harness.Cache.create ~dir:file () in
      let s = degraded_cache_roundtrip cache in
      check Alcotest.bool "degraded to memory-only" true (Ipa_harness.Cache.dir cache = None);
      check Alcotest.bool "failure counted" true (s.disk_errors >= 1);
      check Alcotest.int "one miss, one mem hit" 1 s.misses;
      check Alcotest.int "mem hit" 1 s.mem_hits;
      check Alcotest.int "nothing published" 0 s.writes)

let test_cache_dir_beneath_a_file () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let file = Filename.concat dir "occupied" in
      Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc "x");
      let cache = Ipa_harness.Cache.create ~dir:(Filename.concat file "sub") () in
      let s = degraded_cache_roundtrip cache in
      check Alcotest.bool "degraded to memory-only" true (Ipa_harness.Cache.dir cache = None);
      check Alcotest.bool "failure counted" true (s.disk_errors >= 1))

let test_cache_missing_dir_created () =
  (* A merely missing directory is not a failure: it is created. *)
  Ipa_testlib.with_temp_dir (fun dir ->
      let sub = Filename.concat dir "fresh" in
      let cache = Ipa_harness.Cache.create ~dir:sub () in
      let s = degraded_cache_roundtrip cache in
      check Alcotest.bool "disk layer active" true (Ipa_harness.Cache.dir cache = Some sub);
      check Alcotest.int "no disk errors" 0 s.disk_errors;
      check Alcotest.int "snapshot published" 1 s.writes;
      (* remove the published snapshot so with_temp_dir can clean up *)
      ignore (Ipa_harness.Cache.clear ~dir:sub);
      Unix.rmdir sub)

let test_cache_find_bytes_counts () =
  let cache = Ipa_harness.Cache.create () in
  check Alcotest.bool "miss on empty cache" true
    (Ipa_harness.Cache.find_bytes cache ~key:"no-such-key" = None);
  let s = Ipa_harness.Cache.stats cache in
  check Alcotest.int "miss counted" 1 s.misses;
  check Alcotest.int "no disk errors" 0 s.disk_errors

let () =
  Alcotest.run "harness"
    [
      ( "cache-degradation",
        [
          Alcotest.test_case "cache dir is a regular file" `Quick test_cache_dir_is_a_file;
          Alcotest.test_case "cache dir beneath a regular file" `Quick
            test_cache_dir_beneath_a_file;
          Alcotest.test_case "missing cache dir is created" `Quick test_cache_missing_dir_created;
          Alcotest.test_case "find_bytes counts misses" `Quick test_cache_find_bytes_counts;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "config" `Quick test_config_default;
          Alcotest.test_case "fig1" `Slow test_fig1;
          Alcotest.test_case "fig4" `Slow test_fig4;
          Alcotest.test_case "figs567" `Slow test_figs567;
          Alcotest.test_case "run_to_row" `Quick test_run_to_row;
          Alcotest.test_case "taint study" `Slow test_taint_study;
          Alcotest.test_case "timeouts" `Quick test_timeouts_render;
          Alcotest.test_case "ablation smoke" `Slow test_ablation_smoke;
        ] );
    ]
