(* Tests for the experiment harness at tiny scale. *)

module E = Ipa_harness.Experiments
module Config = Ipa_harness.Config
module Flavors = Ipa_core.Flavors

let check = Alcotest.check

let tiny : Config.t =
  { scale = 0.02; budget = 2_000_000; jobs = 1; cache = Ipa_harness.Cache.create () }

let test_config_default () =
  check Alcotest.bool "scale" true (Config.default.scale = 1.0);
  check Alcotest.int "budget" 10_000_000 Config.default.budget;
  check Alcotest.bool "jobs" true (Config.default.jobs >= 1)

let test_fig1 () =
  let runs = E.Fig1.compute tiny in
  check Alcotest.int "two runs per benchmark" 18 (List.length runs);
  List.iter
    (fun (r : E.run) ->
      check Alcotest.bool (r.bench ^ " completes at tiny scale") false r.timed_out;
      check Alcotest.bool "precision present" true (r.precision <> None))
    runs;
  let analyses = List.sort_uniq compare (List.map (fun (r : E.run) -> r.analysis) runs) in
  check (Alcotest.list Alcotest.string) "analyses" [ "2objH"; "insens" ] analyses

let test_fig4 () =
  let rows = E.Fig4.compute tiny in
  check Alcotest.int "7 + average" 8 (List.length rows);
  let last = List.nth rows 7 in
  check Alcotest.string "average row" "average" last.bench;
  List.iter
    (fun (r : E.Fig4.row) ->
      let in_range x = x >= 0.0 && x <= 100.0 in
      if
        not
          (in_range r.a_sites_pct && in_range r.b_sites_pct && in_range r.a_objects_pct
          && in_range r.b_objects_pct)
      then Alcotest.failf "%s: percentage out of range" r.bench)
    rows;
  (* the average row is the mean of the others *)
  let body = List.filteri (fun i _ -> i < 7) rows in
  let mean f = List.fold_left (fun a r -> a +. f r) 0.0 body /. 7.0 in
  check (Alcotest.float 0.001) "average correct" (mean (fun r -> r.E.Fig4.a_sites_pct))
    last.a_sites_pct

let test_figs567 () =
  let runs = E.Figs567.compute tiny (Flavors.Object_sens { depth = 2; heap = 1 }) in
  check Alcotest.int "4 runs x 6 benchmarks" 24 (List.length runs);
  let labels =
    List.sort_uniq compare (List.map (fun (r : E.run) -> r.analysis) runs)
  in
  check
    (Alcotest.list Alcotest.string)
    "labels"
    [ "2objH"; "2objH-IntroA"; "2objH-IntroB"; "insens" ]
    labels

let test_run_to_row () =
  let row =
    E.run_to_row
      {
        bench = "x";
        analysis = "2objH";
        seconds = 1.5;
        derivations = 42;
        timed_out = false;
        precision = None;
        tainted_sinks = Some 3;
        counters = Ipa_core.Solution.zero_counters;
      }
  in
  check (Alcotest.list Alcotest.string) "row" [ "2objH"; "1.50"; "42"; "-"; "-"; "-"; "3" ] row;
  let row =
    E.run_to_row
      {
        bench = "x";
        analysis = "2objH";
        seconds = 99.0;
        derivations = 7;
        timed_out = true;
        precision = None;
        tainted_sinks = None;
        counters = Ipa_core.Solution.zero_counters;
      }
  in
  check Alcotest.string "timeout cell" "timeout" (List.nth row 1);
  check Alcotest.string "timeout taint cell" "-" (List.nth row 6)

let test_taint_study () =
  let runs = E.Taint_study.compute tiny in
  check Alcotest.int "four runs" 4 (List.length runs);
  let by label = List.find (fun (r : E.run) -> r.analysis = label) runs in
  let sinks label =
    match (by label).tainted_sinks with
    | Some n -> n
    | None -> Alcotest.failf "%s timed out at tiny scale" label
  in
  (* Context-insensitively the hot secret reaches every client's sink;
     every 2objH variant pins it to the one genuinely hot sink. *)
  check Alcotest.bool "insens conflates"
    true
    (sinks "insens" >= E.Taint_study.clients tiny);
  check Alcotest.int "2objH exact" 1 (sinks "2objH");
  check Alcotest.int "IntroA exact" 1 (sinks "2objH-IntroA");
  check Alcotest.int "IntroB exact" 1 (sinks "2objH-IntroB")

let test_ablation_smoke () =
  (* The ablation studies must run end-to-end at tiny scale. *)
  let cfg : Config.t =
    { scale = 0.02; budget = 1_000_000; jobs = 2; cache = Ipa_harness.Cache.create () }
  in
  Ipa_harness.Ablation.grid cfg;
  Ipa_harness.Ablation.components cfg

let test_timeouts_render () =
  (* With an absurdly small budget everything times out and compute still
     returns well-formed rows. *)
  let cfg : Config.t =
    { scale = 0.02; budget = 10; jobs = 1; cache = Ipa_harness.Cache.create () }
  in
  let runs = E.Fig1.compute cfg in
  List.iter
    (fun (r : E.run) ->
      check Alcotest.bool "timed out" true r.timed_out;
      check Alcotest.bool "no precision" true (r.precision = None))
    runs

(* ---------- cache graceful degradation ----------

   An unusable --cache-dir must degrade to memory-only operation: no
   exception, the failure counted as a disk error, and solves still
   deduplicated by the in-memory layer. Permission-based fixtures don't
   work here (the suite may run as root, which bypasses mode bits), so
   the unusable directories are paths through regular files. *)

let degraded_cache_roundtrip cache =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let cold, _ = Ipa_harness.Cache.base_pass cache ~budget:0 p in
  let warm, _ = Ipa_harness.Cache.base_pass cache ~budget:0 p in
  check Alcotest.bool "solves fine without a disk layer" false cold.timed_out;
  check Alcotest.bool "second solve is an in-memory hit" true
    (Ipa_testlib.canon_native cold.solution = Ipa_testlib.canon_native warm.solution);
  Ipa_harness.Cache.stats cache

let test_cache_dir_is_a_file () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let file = Filename.concat dir "occupied" in
      Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc "not a dir\n");
      let cache = Ipa_harness.Cache.create ~dir:file () in
      let s = degraded_cache_roundtrip cache in
      check Alcotest.bool "degraded to memory-only" true (Ipa_harness.Cache.dir cache = None);
      check Alcotest.bool "failure counted" true (s.disk_errors >= 1);
      check Alcotest.int "one miss, one mem hit" 1 s.misses;
      check Alcotest.int "mem hit" 1 s.mem_hits;
      check Alcotest.int "nothing published" 0 s.writes)

let test_cache_dir_beneath_a_file () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let file = Filename.concat dir "occupied" in
      Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc "x");
      let cache = Ipa_harness.Cache.create ~dir:(Filename.concat file "sub") () in
      let s = degraded_cache_roundtrip cache in
      check Alcotest.bool "degraded to memory-only" true (Ipa_harness.Cache.dir cache = None);
      check Alcotest.bool "failure counted" true (s.disk_errors >= 1))

let test_cache_missing_dir_created () =
  (* A merely missing directory is not a failure: it is created. *)
  Ipa_testlib.with_temp_dir (fun dir ->
      let sub = Filename.concat dir "fresh" in
      let cache = Ipa_harness.Cache.create ~dir:sub () in
      let s = degraded_cache_roundtrip cache in
      check Alcotest.bool "disk layer active" true (Ipa_harness.Cache.dir cache = Some sub);
      check Alcotest.int "no disk errors" 0 s.disk_errors;
      check Alcotest.int "snapshot published" 1 s.writes;
      (* remove the published snapshot so with_temp_dir can clean up *)
      ignore (Ipa_harness.Cache.clear ~dir:sub ());
      Unix.rmdir sub)

let test_cache_find_bytes_counts () =
  let cache = Ipa_harness.Cache.create () in
  check Alcotest.bool "miss on empty cache" true
    (Ipa_harness.Cache.find_bytes cache ~key:"no-such-key" = None);
  let s = Ipa_harness.Cache.stats cache in
  check Alcotest.int "miss counted" 1 s.misses;
  check Alcotest.int "no disk errors" 0 s.disk_errors

(* ---------- in-memory LRU budget ----------

   [find_bytes] serves raw snapshot bytes without decoding them, so the
   LRU layer can be exercised with fake [.snap] files of known sizes:
   four 100-byte entries against a 250-byte budget force evictions on the
   third distinct access. *)

module Cache = Ipa_harness.Cache

let lru_body i = String.make 100 (Char.chr (Char.code 'a' + i))

let lru_fixture dir n =
  for i = 0 to n - 1 do
    Out_channel.with_open_bin
      (Filename.concat dir (Printf.sprintf "k%d.snap" i))
      (fun oc -> Out_channel.output_string oc (lru_body i))
  done

let lru_get cache i =
  check
    (Alcotest.option Alcotest.string)
    (Printf.sprintf "k%d content" i)
    (Some (lru_body i))
    (Cache.find_bytes cache ~key:(Printf.sprintf "k%d" i))

let test_lru_eviction_order () =
  Ipa_testlib.with_temp_dir (fun dir ->
      lru_fixture dir 4;
      let cache = Cache.create ~dir ~mem_budget:250 () in
      lru_get cache 0;
      lru_get cache 1;
      check (Alcotest.list Alcotest.string) "both resident" [ "k0"; "k1" ]
        (Cache.resident_keys cache);
      lru_get cache 2;
      (* 300 bytes > 250: the least recently used entry goes *)
      check (Alcotest.list Alcotest.string) "k0 evicted first" [ "k1"; "k2" ]
        (Cache.resident_keys cache);
      lru_get cache 1;
      (* the touch restamped k1, so the next eviction picks k2 *)
      lru_get cache 3;
      check (Alcotest.list Alcotest.string) "k2 evicted after k1 touch" [ "k1"; "k3" ]
        (Cache.resident_keys cache);
      let s = Cache.stats cache in
      check Alcotest.int "two evictions" 2 s.evictions;
      check Alcotest.int "resident bytes" 200 s.resident_bytes;
      check Alcotest.int "one memory hit (the k1 touch)" 1 s.mem_hits;
      (* eviction drops only the memory copy: the disk layer still serves
         k0, and the promotion re-enters it into the LRU order *)
      lru_get cache 0;
      let s = Cache.stats cache in
      check Alcotest.int "evicted entries re-read from disk" 5 s.disk_hits;
      check (Alcotest.list Alcotest.string) "promotion displaced the LRU entry"
        [ "k0"; "k3" ] (Cache.resident_keys cache))

let test_lru_pinning () =
  Ipa_testlib.with_temp_dir (fun dir ->
      lru_fixture dir 2;
      let cache = Cache.create ~dir ~mem_budget:150 () in
      lru_get cache 0;
      check Alcotest.bool "pin resident key" true (Cache.pin cache ~key:"k0");
      check Alcotest.bool "pin counted twice" true (Cache.pin cache ~key:"k0");
      check Alcotest.bool "pin absent key refused" false (Cache.pin cache ~key:"k1");
      lru_get cache 1;
      (* over budget, but k0 is pinned: the incoming unpinned entry is the
         victim, even though it is the most recently used *)
      check (Alcotest.list Alcotest.string) "pinned entry survives" [ "k0" ]
        (Cache.resident_keys cache);
      Cache.unpin cache ~key:"k0";
      lru_get cache 1;
      (* one pin released, one still held: k0 remains protected *)
      check (Alcotest.list Alcotest.string) "counted pin still protects" [ "k0" ]
        (Cache.resident_keys cache);
      Cache.unpin cache ~key:"k0";
      lru_get cache 1;
      (* fully unpinned, plain LRU resumes: k0 is the older entry *)
      check (Alcotest.list Alcotest.string) "unpinned entry evictable again" [ "k1" ]
        (Cache.resident_keys cache);
      let s = Cache.stats cache in
      check Alcotest.int "evictions" 3 s.evictions;
      check Alcotest.bool "resident within budget" true (s.resident_bytes <= 150))

(* Replay one access sequence on two fresh caches: same resident set,
   same eviction count — ticks are issued under the lock, so eviction
   order is a deterministic function of the access order. The budget
   holds as an invariant after every access (nothing is pinned). *)
let lru_trace dir seq budget =
  let cache = Cache.create ~dir ~mem_budget:budget () in
  List.iter
    (fun i ->
      lru_get cache i;
      let s = Cache.stats cache in
      if s.resident_bytes > budget then
        Alcotest.failf "resident %d bytes exceeds budget %d" s.resident_bytes budget)
    seq;
  (Cache.resident_keys cache, (Cache.stats cache).evictions)

let test_lru_deterministic_under_budget () =
  Ipa_testlib.with_temp_dir (fun dir ->
      lru_fixture dir 4;
      let seq = [ 0; 1; 2; 1; 3; 0; 2; 3; 1; 0; 3; 2; 0; 1 ] in
      let a = lru_trace dir seq 250 in
      let b = lru_trace dir seq 250 in
      check
        (Alcotest.pair (Alcotest.list Alcotest.string) Alcotest.int)
        "same access order, same evictions" a b;
      check Alcotest.bool "evictions occurred" true (snd a > 0))

let test_parse_budget () =
  let ok s n =
    match Cache.parse_budget s with
    | Ok v -> check Alcotest.int s n v
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  and err s =
    match Cache.parse_budget s with
    | Ok v -> Alcotest.failf "%S accepted as %d" s v
    | Error _ -> ()
  in
  ok "0" 0;
  ok "123" 123;
  ok "64k" 65_536;
  ok "64K" 65_536;
  ok "2M" 2_097_152;
  ok "1g" 1_073_741_824;
  err "";
  err "12q";
  err "-5";
  err "k";
  err "1.5m"

let test_negative_budget_rejected () =
  (match Cache.create ~mem_budget:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative budget accepted");
  check Alcotest.bool "zero budget allowed" true
    (Cache.mem_budget (Cache.create ~mem_budget:0 ()) = Some 0)

let () =
  Alcotest.run "harness"
    [
      ( "cache-degradation",
        [
          Alcotest.test_case "cache dir is a regular file" `Quick test_cache_dir_is_a_file;
          Alcotest.test_case "cache dir beneath a regular file" `Quick
            test_cache_dir_beneath_a_file;
          Alcotest.test_case "missing cache dir is created" `Quick test_cache_missing_dir_created;
          Alcotest.test_case "find_bytes counts misses" `Quick test_cache_find_bytes_counts;
        ] );
      ( "cache-lru",
        [
          Alcotest.test_case "eviction follows access order" `Quick test_lru_eviction_order;
          Alcotest.test_case "pinned entries survive" `Quick test_lru_pinning;
          Alcotest.test_case "deterministic and within budget" `Quick
            test_lru_deterministic_under_budget;
          Alcotest.test_case "parse_budget" `Quick test_parse_budget;
          Alcotest.test_case "negative budget rejected" `Quick test_negative_budget_rejected;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "config" `Quick test_config_default;
          Alcotest.test_case "fig1" `Slow test_fig1;
          Alcotest.test_case "fig4" `Slow test_fig4;
          Alcotest.test_case "figs567" `Slow test_figs567;
          Alcotest.test_case "run_to_row" `Quick test_run_to_row;
          Alcotest.test_case "taint study" `Slow test_taint_study;
          Alcotest.test_case "timeouts" `Quick test_timeouts_render;
          Alcotest.test_case "ablation smoke" `Slow test_ablation_smoke;
        ] );
    ]
