(* Golden regression tests: exact, deterministic result counts on generated
   benchmarks at a fixed scale. Derivation counts, relation sizes, and every
   precision metric are fully deterministic (no wall-clock dependence), so
   any change here is a semantic change to the solver, the motifs, or the
   metrics — which must be deliberate. Update the table when one is. *)

module F = Ipa_core.Flavors

let check = Alcotest.check

type gold = {
  bench : string;
  flavor : F.spec;
  derivations : int;
  vpt : int;
  poly : int;
  reach : int;
  casts : int;
  uncaught : int;
  cg : int;
}

let insens = F.Insensitive
let obj2 = F.Object_sens { depth = 2; heap = 1 }
let call2 = F.Call_site { depth = 2; heap = 1 }
let type2 = F.Type_sens { depth = 2; heap = 1 }

let table =
  [
    (* bench, flavor, derivations, vpt, poly, reach, casts, uncaught, cg *)
    ("chart", insens, 4606, 3630, 26, 277, 13, 2, 496);
    ("chart", obj2, 7307, 6437, 2, 250, 0, 2, 345);
    ("chart", call2, 15648, 14695, 2, 250, 0, 2, 345);
    ("chart", type2, 4295, 3470, 2, 250, 2, 2, 345);
    ("hsqldb", insens, 22382, 20200, 17, 496, 7, 1, 932);
    ("hsqldb", obj2, 190982, 188463, 1, 481, 0, 1, 873);
    ("hsqldb", call2, 365979, 363051, 1, 481, 0, 1, 873);
    ("hsqldb", type2, 22259, 20136, 1, 481, 0, 1, 873);
  ]
  |> List.map (fun (bench, flavor, derivations, vpt, poly, reach, casts, uncaught, cg) ->
         { bench; flavor; derivations; vpt; poly; reach; casts; uncaught; cg })

let test_golden () =
  let programs = Hashtbl.create 4 in
  List.iter
    (fun g ->
      let p =
        match Hashtbl.find_opt programs g.bench with
        | Some p -> p
        | None ->
          let p =
            Ipa_synthetic.Dacapo.build ~scale:0.1
              (Option.get (Ipa_synthetic.Dacapo.find g.bench))
          in
          Hashtbl.add programs g.bench p;
          p
      in
      let r = Ipa_core.Analysis.run_plain p g.flavor in
      let prec = Ipa_core.Precision.compute r.solution in
      let st = Ipa_core.Solution.stats r.solution in
      let label what = Printf.sprintf "%s/%s %s" g.bench (F.to_string g.flavor) what in
      check Alcotest.int (label "derivations") g.derivations r.solution.derivations;
      check Alcotest.int (label "vpt") g.vpt st.vpt_tuples;
      check Alcotest.int (label "poly") g.poly prec.poly_vcalls;
      check Alcotest.int (label "reach") g.reach prec.reachable_methods;
      check Alcotest.int (label "casts") g.casts prec.may_fail_casts;
      check Alcotest.int (label "uncaught") g.uncaught prec.uncaught_exceptions;
      check Alcotest.int (label "cg") g.cg prec.call_edges)
    table

(* ---------- cache differential ---------- *)

(* A cache-hit run must be indistinguishable from a cold run: byte-identical
   context-decoded relations (canon_native also self-checks each solution,
   so every deserialized solution passes [Solution.self_check]), identical
   derivation counts, counters and stored metrics. *)

module Cache = Ipa_harness.Cache
module Analysis = Ipa_core.Analysis

let chart () =
  Ipa_synthetic.Dacapo.build ~scale:0.1 (Option.get (Ipa_synthetic.Dacapo.find "chart"))

let test_cache_differential () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let p = chart () in
      let flavors = [ insens; obj2; call2; type2 ] in
      let solve cache f =
        Cache.solve cache p ~label:(F.to_string f)
          (Ipa_core.Solver.plain p (F.strategy p f))
      in
      let cold_cache = Cache.create ~dir () in
      let cold = List.map (solve cold_cache) flavors in
      let cs = Cache.stats cold_cache in
      check Alcotest.int "cold misses" 4 cs.misses;
      check Alcotest.int "cold writes" 4 cs.writes;
      check Alcotest.int "cold hits" 0 (cs.mem_hits + cs.disk_hits);
      (* a process-fresh cache over the same directory: all disk hits *)
      let warm_cache = Cache.create ~dir () in
      let warm = List.map (solve warm_cache) flavors in
      let ws = Cache.stats warm_cache in
      check Alcotest.int "warm disk hits" 4 ws.disk_hits;
      check Alcotest.int "warm misses" 0 ws.misses;
      List.iter2
        (fun ((a : Analysis.result), ma) ((b : Analysis.result), mb) ->
          let name what = Printf.sprintf "%s %s" a.label what in
          check
            (Alcotest.list Alcotest.string)
            (name "relations")
            (Ipa_testlib.canon_native a.solution)
            (Ipa_testlib.canon_native b.solution);
          check Alcotest.int (name "derivations") a.solution.derivations b.solution.derivations;
          check Alcotest.bool (name "counters") true (a.solution.counters = b.solution.counters);
          check Alcotest.bool (name "metrics") true (ma = mb);
          (* the snapshot's stored metrics match a recomputation over the
             deserialized solution *)
          check Alcotest.bool (name "metrics recomputable") true
            (Ipa_core.Introspection.compute b.solution = mb))
        cold warm;
      (* within one cache, a repeated solve is a memory hit with the same
         content *)
      let again, _ = solve warm_cache insens in
      check Alcotest.int "mem hit" 1 (Cache.stats warm_cache).mem_hits;
      check
        (Alcotest.list Alcotest.string)
        "mem hit relations"
        (Ipa_testlib.canon_native (fst (List.hd cold)).solution)
        (Ipa_testlib.canon_native again.solution))

let test_cache_introspective_differential () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let p = chart () in
      let direct = Analysis.run_introspective p obj2 Ipa_core.Heuristics.default_a in
      (* publish the base pass, then rebuild it from disk in a fresh cache *)
      ignore (Cache.base_pass (Cache.create ~dir ()) ~budget:0 p);
      let warm = Cache.create ~dir () in
      let base, metrics = Cache.base_pass warm ~budget:0 p in
      check Alcotest.int "base from disk" 1 (Cache.stats warm).disk_hits;
      let cached = Analysis.run_introspective_from_base p ~base ~metrics obj2 Ipa_core.Heuristics.default_a in
      check Alcotest.bool "selection" true (direct.selection = cached.selection);
      check Alcotest.int "second-pass derivations" direct.second.solution.derivations
        cached.second.solution.derivations;
      check
        (Alcotest.list Alcotest.string)
        "second-pass relations"
        (Ipa_testlib.canon_native direct.second.solution)
        (Ipa_testlib.canon_native cached.second.solution))

let () =
  Alcotest.run "golden"
    [
      ("counts", [ Alcotest.test_case "frozen benchmark results" `Quick test_golden ]);
      ( "cache differential",
        [
          Alcotest.test_case "hit equals cold, all flavors" `Quick test_cache_differential;
          Alcotest.test_case "introspective from cached base" `Quick
            test_cache_introspective_differential;
        ] );
    ]
