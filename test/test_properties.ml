(* Randomized property tests across the stack:
   - the semi-naive Datalog engine against a naive reference evaluator on
     randomly generated rule/fact instances;
   - subtyping on random hierarchies against graph reachability;
   - catch-chain routing against its first-match specification;
   - context-table algebra;
   - facts-dump diffing;
   - solver determinism and budget monotonicity;
   - parser robustness on truncated inputs. *)

module P = Ipa_ir.Program
module B = Ipa_ir.Builder
module Ctx = Ipa_core.Ctx
module Relation = Ipa_datalog.Relation
module Rule = Ipa_datalog.Rule
module Engine = Ipa_datalog.Engine
module Splitmix = Ipa_support.Splitmix

let check = Alcotest.check

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- Datalog engine vs naive reference ---------- *)

(* Mini rule representation shared by the engine encoding and the naive
   evaluator: three binary relations r0..r2; a rule derives into one of them
   from up to two body atoms. *)
type mini_term = V of int | C of int
type mini_rule = { head : int * mini_term array; body : (int * mini_term array) list }

let naive_eval (facts : (int * (int * int)) list) (rules : mini_rule list) =
  let tuples = Array.make 3 [] in
  List.iter (fun (r, t) -> if not (List.mem t tuples.(r)) then tuples.(r) <- t :: tuples.(r)) facts;
  let lookup env = function V i -> env.(i) | C c -> c in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { head = hrel, hterms; body } ->
        (* enumerate all bindings of up to 3 variables over the body *)
        let rec go env = function
          | [] ->
            let tup = (lookup env hterms.(0), lookup env hterms.(1)) in
            if not (List.mem tup tuples.(hrel)) then begin
              tuples.(hrel) <- tup :: tuples.(hrel);
              changed := true
            end
          | (brel, bterms) :: rest ->
            List.iter
              (fun (x, y) ->
                let bind env t value =
                  match t with
                  | C c -> if c = value then Some env else None
                  | V i ->
                    if env.(i) = -1 then begin
                      let env' = Array.copy env in
                      env'.(i) <- value;
                      Some env'
                    end
                    else if env.(i) = value then Some env
                    else None
                in
                match bind env bterms.(0) x with
                | None -> ()
                | Some env -> (
                  match bind env bterms.(1) y with
                  | None -> ()
                  | Some env -> go env rest))
              tuples.(brel)
        in
        go (Array.make 3 (-1)) body)
      rules
  done;
  Array.map (List.sort_uniq compare) tuples

let engine_eval facts rules =
  let rels = Array.init 3 (fun i -> Relation.create ~name:(Printf.sprintf "r%d" i) ~arity:2) in
  List.iter (fun (r, (x, y)) -> ignore (Relation.add rels.(r) [| x; y |])) facts;
  let term = function V i -> Rule.Var i | C c -> Rule.Const c in
  let conv (r, ts) = (rels.(r), Array.map term ts) in
  let engine_rules =
    List.map
      (fun { head; body } -> Rule.make ~n_vars:3 ~heads:[ conv head ] ~body:(List.map conv body) ())
      rules
  in
  ignore (Engine.fixpoint engine_rules);
  Array.map
    (fun rel ->
      List.sort_uniq compare (List.map (fun t -> (t.(0), t.(1))) (Relation.to_list rel)))
    rels

(* Random mini-rule whose head variables are all bound by the body. *)
let gen_mini_rule rng =
  let gen_term () = if Splitmix.chance rng 0.2 then C (Splitmix.int rng 4) else V (Splitmix.int rng 3) in
  let gen_atom () = (Splitmix.int rng 3, [| gen_term (); gen_term () |]) in
  let body = List.init (1 + Splitmix.int rng 2) (fun _ -> gen_atom ()) in
  let bound = Array.make 3 false in
  List.iter
    (fun (_, ts) -> Array.iter (function V i -> bound.(i) <- true | C _ -> ()) ts)
    body;
  let head_term () =
    let candidates = List.filter (fun i -> bound.(i)) [ 0; 1; 2 ] in
    if candidates = [] || Splitmix.chance rng 0.15 then C (Splitmix.int rng 4)
    else V (List.nth candidates (Splitmix.int rng (List.length candidates)))
  in
  { head = (Splitmix.int rng 3, [| head_term (); head_term () |]); body }

let test_engine_vs_naive () =
  for seed = 1 to 120 do
    let rng = Splitmix.create (9000 + seed) in
    let facts =
      List.init (2 + Splitmix.int rng 8) (fun _ ->
          (Splitmix.int rng 3, (Splitmix.int rng 4, Splitmix.int rng 4)))
    in
    let rules = List.init (1 + Splitmix.int rng 3) (fun _ -> gen_mini_rule rng) in
    let expected = naive_eval facts rules in
    let got = engine_eval facts rules in
    for r = 0 to 2 do
      if expected.(r) <> got.(r) then
        Alcotest.failf "seed %d relation %d: naive %d tuples, engine %d" seed r
          (List.length expected.(r))
          (List.length got.(r))
    done
  done

(* ---------- subtyping vs reachability ---------- *)

let test_random_hierarchy_subtype () =
  for seed = 1 to 40 do
    let rng = Splitmix.create (7000 + seed) in
    let n = 4 + Splitmix.int rng 10 in
    let b = B.create () in
    let root = B.add_class b "Root" in
    let ids = Array.make (n + 1) root in
    let parent = Array.make (n + 1) 0 in
    for i = 1 to n do
      let super_idx = Splitmix.int rng i in
      parent.(i) <- super_idx;
      ids.(i) <- B.add_class b ~super:ids.(super_idx) (Printf.sprintf "K%d" i)
    done;
    let main = B.add_method b ~owner:root ~name:"main" ~static:true ~params:[] () in
    B.add_entry b main;
    let p = B.finish b in
    (* reference: walk parent pointers *)
    let rec ancestor sub sup = sub = sup || (sub <> 0 && ancestor parent.(sub) sup) in
    for i = 0 to n do
      for j = 0 to n do
        if P.subtype p ~sub:ids.(i) ~super:ids.(j) <> ancestor i j then
          Alcotest.failf "seed %d: subtype(%d, %d) disagrees" seed i j
      done
    done
  done

(* ---------- catch routing ---------- *)

let test_catch_route_spec () =
  for seed = 1 to 40 do
    let rng = Splitmix.create (6000 + seed) in
    let b = B.create () in
    let root = B.add_class b "Root" in
    let classes =
      Array.init 8 (fun i ->
          B.add_class b
            ~super:(if i = 0 || Splitmix.bool rng then root else root)
            (Printf.sprintf "E%d" i))
    in
    (* chain a few subclass relationships *)
    let sub1 = B.add_class b ~super:classes.(0) "Sub1" in
    let sub2 = B.add_class b ~super:sub1 "Sub2" in
    let all = Array.append classes [| root; sub1; sub2 |] in
    let m = B.add_method b ~owner:root ~name:"m" ~static:true ~params:[] () in
    let n_clauses = 1 + Splitmix.int rng 4 in
    let clause_types =
      Array.init n_clauses (fun i ->
          let cls = Splitmix.choose rng all in
          let v = B.add_var b m (Printf.sprintf "c%d" i) in
          B.add_catch b m ~cls ~var:v;
          cls)
    in
    B.add_entry b m;
    let p = B.finish b in
    Array.iter
      (fun thrown ->
        let expected =
          let rec first i =
            if i >= n_clauses then None
            else if P.subtype p ~sub:thrown ~super:clause_types.(i) then Some i
            else first (i + 1)
          in
          first 0
        in
        if P.catch_route p m thrown <> expected then
          Alcotest.failf "seed %d: route disagrees for class %d" seed thrown)
      all
  done

(* ---------- context algebra ---------- *)

let prop_ctx_push_trunc =
  qtest "push_trunc keeps a bounded prefix"
    QCheck2.Gen.(pair (list (int_bound 50)) (int_range 1 4))
    (fun (elems, keep) ->
      let t = Ctx.create () in
      let final =
        List.fold_left
          (fun ctx e -> Ctx.push_trunc t ctx ~elem:(Ctx.Elem.heap e) ~keep)
          Ctx.empty elems
      in
      let got = Array.to_list (Array.map Ctx.Elem.id (Ctx.elems t final)) in
      let expected =
        let rev = List.rev elems in
        List.filteri (fun i _ -> i < keep) rev
      in
      got = expected)

let prop_ctx_intern_stable =
  qtest "intern is injective on element sequences"
    QCheck2.Gen.(pair (list_size (int_bound 4) (int_bound 100)) (list_size (int_bound 4) (int_bound 100)))
    (fun (a, b) ->
      let t = Ctx.create () in
      let ia = Ctx.intern t (Array.of_list (List.map Ctx.Elem.invo a)) in
      let ib = Ctx.intern t (Array.of_list (List.map Ctx.Elem.invo b)) in
      (ia = ib) = (a = b))

(* ---------- facts dump ---------- *)

let prop_facts_diff =
  let module FD = Ipa_clients.Facts_dump in
  qtest "diff of sorted unique lists is set difference"
    QCheck2.Gen.(pair (list (int_bound 30)) (list (int_bound 30)))
    (fun (a, b) ->
      let sa = List.sort_uniq compare (List.map string_of_int a) in
      let sb = List.sort_uniq compare (List.map string_of_int b) in
      let only_a, only_b = FD.diff sa sb in
      only_a = List.filter (fun x -> not (List.mem x sb)) sa
      && only_b = List.filter (fun x -> not (List.mem x sa)) sb)

let test_facts_dump_engines_agree () =
  (* The collapsed dump of the native solver equals nothing missing vs the
     solution's own accessors, and dumps are stable across runs. *)
  for seed = 400 to 404 do
    let p = Ipa_testlib.random_program seed in
    let r1 = Ipa_core.Analysis.run_plain p Ipa_core.Flavors.Insensitive in
    let r2 = Ipa_core.Analysis.run_plain p Ipa_core.Flavors.Insensitive in
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "stable %d" seed)
      (Ipa_clients.Facts_dump.full_lines r1.solution)
      (Ipa_clients.Facts_dump.full_lines r2.solution)
  done

(* ---------- solver determinism and budget ---------- *)

let test_budget_monotone () =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let full = Ipa_core.Analysis.run_plain p Ipa_core.Flavors.Insensitive in
  let total = full.solution.derivations in
  (* any budget >= total completes with identical results *)
  let again = Ipa_core.Analysis.run_plain ~budget:total p Ipa_core.Flavors.Insensitive in
  check Alcotest.bool "exact budget completes" false again.timed_out;
  check (Alcotest.list Alcotest.string) "same result"
    (Ipa_testlib.canon_native full.solution)
    (Ipa_testlib.canon_native again.solution);
  (* any smaller budget times out at exactly budget+1 derivations *)
  for b = 1 to min 20 (total - 1) do
    let r = Ipa_core.Analysis.run_plain ~budget:b p Ipa_core.Flavors.Insensitive in
    check Alcotest.bool "times out" true r.timed_out;
    check Alcotest.int "deterministic cutoff" (b + 1) r.solution.derivations
  done

(* ---------- solver configuration invariants ---------- *)

let config_with p flavor ~order ?(collapse = false) ?(shards = 1) ~field_sensitive () :
    Ipa_core.Solver.config =
  {
    default_strategy = Ipa_core.Flavors.strategy p flavor;
    refined_strategy = Ipa_core.Flavors.strategy p flavor;
    refine = Ipa_core.Refine.None_;
    budget = 0;
    order;
    collapse_cycles = collapse;
    field_sensitive;
    shards;
  }

let test_worklist_order_independence () =
  (* Every worklist discipline, with and without cycle elimination, must
     compute the same fixpoint on random programs and on a generated
     benchmark, for several flavors. *)
  let programs =
    List.init 6 (fun i -> Ipa_testlib.random_program (500 + i))
    @ [ Ipa_synthetic.Dacapo.build ~scale:0.03 (Option.get (Ipa_synthetic.Dacapo.find "chart"));
        (* jython's feedback-cycle interpreter guarantees nontrivial SCCs, so
           the collapse variants below exercise actual merging, not a no-op. *)
        Ipa_synthetic.Dacapo.build ~scale:0.02 (Option.get (Ipa_synthetic.Dacapo.find "jython"))
      ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun flavor ->
          let solve ~order ~collapse =
            Ipa_core.Solver.run p (config_with p flavor ~order ~collapse ~field_sensitive:true ())
          in
          let reference = Ipa_testlib.canon_native (solve ~order:Lifo ~collapse:false) in
          List.iter
            (fun (name, order, collapse) ->
              check (Alcotest.list Alcotest.string) name reference
                (Ipa_testlib.canon_native (solve ~order ~collapse)))
            [
              ("fifo", Ipa_core.Solver.Fifo, false);
              ("topo", Ipa_core.Solver.Topo, false);
              ("lifo+collapse", Ipa_core.Solver.Lifo, true);
              ("fifo+collapse", Ipa_core.Solver.Fifo, true);
              ("topo+collapse", Ipa_core.Solver.Topo, true);
            ])
        [ Ipa_core.Flavors.Insensitive; Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 } ])
    programs

(* Cycle elimination must be invisible above the solver: on random solved
   programs, under every flavor and both introspective heuristics' second
   passes, the collapse-enabled topo solver has to produce the same semantic
   derivation count, pass the soundness self-check, and encode to snapshot
   bytes identical to a collapse-free Lifo solve once the instrumentation
   counters (the only intentional difference) are zeroed out. *)
let test_collapse_differential =
  let canonical_bytes p (s : Ipa_core.Solution.t) =
    let s = { s with Ipa_core.Solution.counters = Ipa_core.Solution.zero_counters } in
    Ipa_core.Snapshot.encode
      {
        key = "differential";
        program_digest = Ipa_core.Snapshot.digest_program p;
        label = "differential";
        seconds = 0.;
        solution = s;
        metrics = None;
      }
  in
  let compare_solves name p ~solve =
    let off : Ipa_core.Solution.t = solve ~order:Ipa_core.Solver.Lifo ~collapse:false in
    let on : Ipa_core.Solution.t = solve ~order:Ipa_core.Solver.Topo ~collapse:true in
    if off.derivations <> on.derivations then
      QCheck2.Test.fail_reportf "%s: derivations %d (off) vs %d (on)" name
        off.derivations on.derivations;
    (match Ipa_core.Solution.self_check on with
    | [] -> ()
    | errs ->
      QCheck2.Test.fail_reportf "%s: self_check: %s" name (String.concat "; " errs));
    if canonical_bytes p off <> canonical_bytes p on then
      QCheck2.Test.fail_reportf "%s: collapse changed the snapshot bytes" name
  in
  qtest ~count:4 "cycle elimination is invisible above the solver"
    (QCheck2.Gen.int_range 700 899)
    (fun seed ->
      let p = Ipa_testlib.random_program seed in
      let base = Ipa_core.Analysis.run_plain p Ipa_core.Flavors.Insensitive in
      let metrics = Ipa_core.Introspection.compute base.solution in
      List.iter
        (fun flavor ->
          let name = Printf.sprintf "seed %d %s" seed (Ipa_core.Flavors.to_string flavor) in
          compare_solves name p ~solve:(fun ~order ~collapse ->
              Ipa_core.Solver.run p
                (config_with p flavor ~order ~collapse ~field_sensitive:true ()));
          if flavor <> Ipa_core.Flavors.Insensitive then
            List.iter
              (fun heuristic ->
                let refine = Ipa_core.Heuristics.select base.solution metrics heuristic in
                let hname = name ^ "-" ^ Ipa_core.Heuristics.name heuristic in
                compare_solves hname p ~solve:(fun ~order ~collapse ->
                    Ipa_core.Solver.run p
                      {
                        Ipa_core.Solver.default_strategy =
                          Ipa_core.Flavors.strategy p Ipa_core.Flavors.Insensitive;
                        refined_strategy = Ipa_core.Flavors.strategy p flavor;
                        refine;
                        budget = 0;
                        order;
                        collapse_cycles = collapse;
                        field_sensitive = true;
                        shards = 1;
                      }))
              [ Ipa_core.Heuristics.default_a; Ipa_core.Heuristics.default_b ])
        [
          Ipa_core.Flavors.Insensitive;
          Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 };
          Ipa_core.Flavors.Type_sens { depth = 2; heap = 1 };
          Ipa_core.Flavors.Call_site { depth = 2; heap = 1 };
        ];
      true)

(* ---------- sharded-solve differential ---------- *)

(* The sharded solver's determinism contract: a solve split across K domains
   must be invisible above the solver — same semantic derivation count, a
   passing soundness self-check, and snapshot bytes identical to the
   sequential solve once the instrumentation counters (the only intentional
   difference) are zeroed. Additionally, because Tarjan sweeps and topology
   recomputation happen on the merged global graph at round boundaries, the
   cycle-elimination counters must agree between different shard counts. *)
let test_shard_differential =
  let canonical_bytes p (s : Ipa_core.Solution.t) =
    let s = { s with Ipa_core.Solution.counters = Ipa_core.Solution.zero_counters } in
    Ipa_core.Snapshot.encode
      {
        key = "differential";
        program_digest = Ipa_core.Snapshot.digest_program p;
        label = "differential";
        seconds = 0.;
        solution = s;
        metrics = None;
      }
  in
  let compare_shards name p ~solve =
    let base : Ipa_core.Solution.t = solve ~shards:1 in
    let base_bytes = canonical_bytes p base in
    let prev = ref None in
    List.iter
      (fun shards ->
        let s : Ipa_core.Solution.t = solve ~shards in
        if s.derivations <> base.derivations then
          QCheck2.Test.fail_reportf "%s: derivations %d (1 shard) vs %d (%d shards)" name
            base.derivations s.derivations shards;
        (match Ipa_core.Solution.self_check s with
        | [] -> ()
        | errs -> QCheck2.Test.fail_reportf "%s: self_check: %s" name (String.concat "; " errs));
        if canonical_bytes p s <> base_bytes then
          QCheck2.Test.fail_reportf "%s: %d shards changed the snapshot bytes" name shards;
        if s.counters.shards <> shards then
          QCheck2.Test.fail_reportf "%s: counters.shards = %d after a %d-shard solve" name
            s.counters.shards shards;
        (match !prev with
        | Some (prev_k, (pc : Ipa_core.Solution.counters)) ->
          if
            s.counters.cycles_collapsed <> pc.cycles_collapsed
            || s.counters.repropagations_avoided <> pc.repropagations_avoided
            || s.counters.batch_objs <> pc.batch_objs
          then
            QCheck2.Test.fail_reportf
              "%s: topology counters depend on the shard count (%d vs %d shards)" name prev_k
              shards
        | None -> ());
        prev := Some (shards, s.counters))
      [ 2; 4 ]
  in
  qtest ~count:3 "sharded solving is invisible above the solver"
    (QCheck2.Gen.int_range 900 999)
    (fun seed ->
      let p = Ipa_testlib.random_program seed in
      let base = Ipa_core.Analysis.run_plain p Ipa_core.Flavors.Insensitive in
      let metrics = Ipa_core.Introspection.compute base.solution in
      List.iter
        (fun flavor ->
          let name = Printf.sprintf "seed %d %s" seed (Ipa_core.Flavors.to_string flavor) in
          compare_shards name p ~solve:(fun ~shards ->
              Ipa_core.Solver.run p
                (config_with p flavor ~order:Topo ~collapse:true ~shards ~field_sensitive:true ()));
          if flavor <> Ipa_core.Flavors.Insensitive then
            List.iter
              (fun heuristic ->
                let refine = Ipa_core.Heuristics.select base.solution metrics heuristic in
                let hname = name ^ "-" ^ Ipa_core.Heuristics.name heuristic in
                compare_shards hname p ~solve:(fun ~shards ->
                    Ipa_core.Solver.run p
                      {
                        Ipa_core.Solver.default_strategy =
                          Ipa_core.Flavors.strategy p Ipa_core.Flavors.Insensitive;
                        refined_strategy = Ipa_core.Flavors.strategy p flavor;
                        refine;
                        budget = 0;
                        order = Topo;
                        collapse_cycles = true;
                        field_sensitive = true;
                        shards;
                      }))
              [ Ipa_core.Heuristics.default_a; Ipa_core.Heuristics.default_b ])
        [
          Ipa_core.Flavors.Insensitive;
          Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 };
          Ipa_core.Flavors.Type_sens { depth = 2; heap = 1 };
          Ipa_core.Flavors.Call_site { depth = 2; heap = 1 };
        ];
      true)

(* A guaranteed-cyclic workload: jython's feedback-cycle interpreter yields
   real SCCs, so sharded runs exercise merges, cross-shard outboxes and
   round-boundary sweeps rather than a trivially acyclic partition. *)
let test_shard_cyclic_benchmark () =
  let p =
    Ipa_synthetic.Dacapo.build ~scale:0.02 (Option.get (Ipa_synthetic.Dacapo.find "jython"))
  in
  List.iter
    (fun flavor ->
      let base = Ipa_core.Analysis.run_plain p flavor in
      List.iter
        (fun shards ->
          let r = Ipa_core.Analysis.run_plain ~shards p flavor in
          let what =
            Printf.sprintf "%s at %d shards" (Ipa_core.Flavors.to_string flavor) shards
          in
          check Alcotest.int (what ^ ": derivations") base.solution.derivations
            r.solution.derivations;
          check (Alcotest.list Alcotest.string) (what ^ ": tables")
            (Ipa_testlib.canon_native base.solution)
            (Ipa_testlib.canon_native r.solution))
        [ 2; 3; 4 ])
    [ Ipa_core.Flavors.Insensitive; Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 } ]

(* Outbox-exchange determinism: the same sharded solve twice must agree on
   everything including the exchange counters — deltas are applied in
   (source-shard, sequence) order, never in domain-scheduling order. *)
let test_shard_rerun_deterministic () =
  let p =
    Ipa_synthetic.Dacapo.build ~scale:0.02 (Option.get (Ipa_synthetic.Dacapo.find "jython"))
  in
  let flavor = Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 } in
  let a = Ipa_core.Analysis.run_plain ~shards:4 p flavor in
  let b = Ipa_core.Analysis.run_plain ~shards:4 p flavor in
  check (Alcotest.list Alcotest.string) "rerun tables"
    (Ipa_testlib.canon_native a.solution)
    (Ipa_testlib.canon_native b.solution);
  check Alcotest.bool "rerun counters (sync rounds, deltas, ...)" true
    (a.solution.counters = b.solution.counters);
  check Alcotest.bool "exchanged at least one cross-shard delta" true
    (a.solution.counters.deltas_exchanged > 0)

(* ---------- the pure partitioner ---------- *)

let test_partition_blocks =
  qtest ~count:300 "partitioner: monotone blocks within the balance bound"
    QCheck2.Gen.(pair (list_size (int_range 1 60) (int_range 1 20)) (int_range 1 8))
    (fun (ws, shards) ->
      let weights = Array.of_list ws in
      let assign = Ipa_core.Solver.partition_blocks ~weights ~shards in
      let monotone = ref true in
      Array.iteri (fun i s -> if i > 0 && s < assign.(i - 1) then monotone := false) assign;
      let in_range = Array.for_all (fun s -> s >= 0 && s < shards) assign in
      let total = Array.fold_left ( + ) 0 weights in
      let max_w = Array.fold_left max 0 weights in
      let per = Array.make shards 0 in
      Array.iteri (fun i s -> per.(s) <- per.(s) + weights.(i)) assign;
      let limit = ((total + shards - 1) / shards) + max_w in
      Array.length assign = Array.length weights
      && in_range && !monotone
      && Array.for_all (fun w -> w <= limit) per)

let test_partition_blocks_invalid () =
  Alcotest.check_raises "shards < 1"
    (Invalid_argument "Solver.partition_blocks: shards must be >= 1") (fun () ->
      ignore (Ipa_core.Solver.partition_blocks ~weights:[| 1 |] ~shards:0));
  Alcotest.check_raises "non-positive weight"
    (Invalid_argument "Solver.partition_blocks: weights must be positive") (fun () ->
      ignore (Ipa_core.Solver.partition_blocks ~weights:[| 1; 0; 2 |] ~shards:2));
  (* more shards than positions: all positions land on valid shards *)
  let assign = Ipa_core.Solver.partition_blocks ~weights:[| 5; 5 |] ~shards:7 in
  check Alcotest.bool "over-provisioned shards stay in range" true
    (Array.for_all (fun s -> s >= 0 && s < 7) assign)

let test_field_based_coarser () =
  (* The field-based degradation must over-approximate the field-sensitive
     result: every field-sensitive var fact also holds field-based. *)
  for seed = 520 to 526 do
    let p = Ipa_testlib.random_program seed in
    let flavor = Ipa_core.Flavors.Insensitive in
    let fs =
      Ipa_core.Solver.run p (config_with p flavor ~order:Lifo ~field_sensitive:true ())
    in
    let fb =
      Ipa_core.Solver.run p (config_with p flavor ~order:Lifo ~field_sensitive:false ())
    in
    let collapse (s : Ipa_core.Solution.t) =
      let tbl = Hashtbl.create 64 in
      Ipa_core.Solution.iter_var_pts s (fun ~var ~ctx:_ ~heap ~hctx:_ ->
          Hashtbl.replace tbl (var, heap) ());
      tbl
    in
    let precise = collapse fs and coarse = collapse fb in
    Hashtbl.iter
      (fun k () ->
        if not (Hashtbl.mem coarse k) then
          Alcotest.failf "seed %d: field-based lost a fact" seed)
      precise
  done;
  (* and it must actually be coarser somewhere: the boxes program conflates *)
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let flavor = Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 } in
  let fs = Ipa_core.Solver.run p (config_with p flavor ~order:Lifo ~field_sensitive:true ()) in
  let fb = Ipa_core.Solver.run p (config_with p flavor ~order:Lifo ~field_sensitive:false ()) in
  let count (s : Ipa_core.Solution.t) = (Ipa_core.Solution.stats s).vpt_tuples in
  check Alcotest.bool "field-based is coarser on boxes" true (count fb > count fs)

(* ---------- taint monotonicity ---------- *)

let test_taint_monotone () =
  (* Every edge of the collapsed value-flow graph is derived monotonically
     from the solution's collapsed relations (points-to, call graph,
     reachability), so a more context-sensitive flavor must never report
     MORE tainted sinks than the insensitive analysis of the same program.
     The spec speaks the random-program generator's vocabulary: anything
     returned by an m0/0 method is a source, every m1/1 argument a sink,
     and statics are sanitizers (cutting some but not all flows). *)
  let flavors =
    Ipa_core.Flavors.
      [
        Object_sens { depth = 2; heap = 1 };
        Call_site { depth = 2; heap = 1 };
        Type_sens { depth = 2; heap = 1 };
        Hybrid { depth = 2; heap = 1 };
      ]
  in
  let total_coarse = ref 0 in
  let assert_monotone what spec p =
    let base = Ipa_core.Analysis.run_plain p Ipa_core.Flavors.Insensitive in
    check Alcotest.bool (what ^ " insens completes") false base.timed_out;
    let coarse = Ipa_clients.Taint.tainted_sink_count ~spec base.solution in
    total_coarse := !total_coarse + coarse;
    List.iter
      (fun flavor ->
        let fine = Ipa_core.Analysis.run_plain p flavor in
        if not fine.timed_out then begin
          let n = Ipa_clients.Taint.tainted_sink_count ~spec fine.solution in
          if n > coarse then
            Alcotest.failf "%s %s: %d tainted sinks > insens %d" what
              (Ipa_core.Flavors.to_string flavor)
              n coarse
        end)
      flavors
  in
  (* random programs with a spec in the generator's vocabulary: m0/0 returns
     and every allocation are sources, the Main statics and m1/1 arguments
     sinks, m2/2 methods sanitizers (cutting some flows, not all) *)
  let random_spec : Ipa_clients.Taint.spec =
    {
      sources = [ "*::m0/0" ];
      source_classes = [ "*" ];
      sinks = [ "Main::s*/1"; "*::m1/1" ];
      sanitizers = [ "*::m2/2" ];
    }
  in
  for seed = 700 to 719 do
    assert_monotone (Printf.sprintf "seed %d" seed) random_spec
      (Ipa_testlib.random_program seed)
  done;
  (* random flows are sparse, so also exercise the structured motif (under
     its native default spec), where flows are guaranteed at every size *)
  List.iter
    (fun (wseed, n, sanitized) ->
      let w = Ipa_synthetic.World.create ~seed:wseed in
      Ipa_synthetic.Motifs.taint_pipes ~sanitized w ~n;
      Ipa_synthetic.Motifs.ballast w ~n:2;
      assert_monotone
        (Printf.sprintf "taint_pipes n=%d" n)
        Ipa_clients.Taint.default_spec
        (Ipa_synthetic.World.finish w))
    [ (41, 3, 1); (42, 5, 2); (43, 8, 3) ];
  (* the property must not hold vacuously: the workloads have real flows *)
  check Alcotest.bool "some tainted sinks across seeds" true (!total_coarse > 0)

(* ---------- parser robustness ---------- *)

let test_parser_truncation_fuzz () =
  let spec = Option.get (Ipa_synthetic.Dacapo.find "antlr") in
  let src = Ipa_ir.Pretty.program (Ipa_synthetic.Dacapo.build ~scale:0.02 spec) in
  let n = String.length src in
  let rng = Splitmix.create 4242 in
  for _ = 1 to 200 do
    let cut = Splitmix.int rng n in
    let mutated = String.sub src 0 cut in
    (* must return, never raise *)
    match Ipa_frontend.Jir.parse_string mutated with
    | Ok _ | Error _ -> ()
  done;
  (* random single-character corruption *)
  for _ = 1 to 200 do
    let i = Splitmix.int rng n in
    let ch = Splitmix.choose rng [| '{'; '}'; ';'; ':'; '('; 'x'; '9'; '.'; '$' |] in
    let mutated = Bytes.of_string src in
    Bytes.set mutated i ch;
    match Ipa_frontend.Jir.parse_string (Bytes.to_string mutated) with
    | Ok _ | Error _ -> ()
  done

let () =
  Alcotest.run "properties"
    [
      ( "datalog",
        [ Alcotest.test_case "engine vs naive reference" `Slow test_engine_vs_naive ] );
      ( "hierarchy",
        [
          Alcotest.test_case "random subtyping" `Quick test_random_hierarchy_subtype;
          Alcotest.test_case "catch routing spec" `Quick test_catch_route_spec;
        ] );
      ("ctx", [ prop_ctx_push_trunc; prop_ctx_intern_stable ]);
      ( "facts",
        [
          prop_facts_diff;
          Alcotest.test_case "dump stability" `Quick test_facts_dump_engines_agree;
        ] );
      ( "solver",
        [
          Alcotest.test_case "budget determinism" `Quick test_budget_monotone;
          Alcotest.test_case "worklist order independence" `Quick
            test_worklist_order_independence;
          test_collapse_differential;
          Alcotest.test_case "field-based coarser" `Quick test_field_based_coarser;
        ] );
      ( "sharding",
        [
          test_shard_differential;
          Alcotest.test_case "cyclic benchmark identical" `Quick test_shard_cyclic_benchmark;
          Alcotest.test_case "rerun deterministic" `Quick test_shard_rerun_deterministic;
          test_partition_blocks;
          Alcotest.test_case "partitioner invalid inputs" `Quick test_partition_blocks_invalid;
        ] );
      ( "taint",
        [ Alcotest.test_case "monotone in precision" `Slow test_taint_monotone ] );
      ("parser", [ Alcotest.test_case "truncation fuzz" `Slow test_parser_truncation_fuzz ]);
    ]
