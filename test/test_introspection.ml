(* Tests for the introspection machinery: the six cost metrics (hand-computed
   expectations), heuristic threshold boundaries, selection statistics, and
   the two-pass driver. *)

module P = Ipa_ir.Program
module Analysis = Ipa_core.Analysis
module Introspection = Ipa_core.Introspection
module Heuristics = Ipa_core.Heuristics
module Refine = Ipa_core.Refine
module Flavors = Ipa_core.Flavors
module Solution = Ipa_core.Solution
module Int_set = Ipa_support.Int_set

let check = Alcotest.check

(* A small program with exactly computable metrics (see the comments below
   for the expected points-to sets). *)
let src = {|
class Object { }
class A extends Object { field f; }
class Main {
  static method main/0 () {
    var x, y, b;
    x = new A;
    x = new A;
    y = new A;
    b = new A;
    b.f = x;
    y = Main::id(x);
  }
  static method id/1 (p) { return p; }
}
entry Main::main/0;
|}
(* insens points-to:
     x = {h0, h1}          y = {h2, h0, h1}        b = {h3}
     p = {h0, h1}          id$ret = {h0, h1}       fpt(h3, f) = {h0, h1} *)

let setup () =
  let p = Ipa_testlib.parse_exn src in
  let base = Analysis.run_plain p Flavors.Insensitive in
  let m = Introspection.compute base.solution in
  (p, base, m)

let meth p name =
  let rec go i =
    if (P.meth_info p i).meth_name = name then i
    else go (i + 1)
  in
  go 0

let test_metric_in_flow () =
  let p, _, m = setup () in
  (* the only call site passes x with |pts(x)| = 2 *)
  check Alcotest.int "invos" 1 (P.n_invos p);
  check Alcotest.int "in-flow" 2 m.in_flow.(0)

let test_metric_volume () =
  let p, _, m = setup () in
  check Alcotest.int "main volume" 6 m.meth_total_volume.(meth p "main");
  check Alcotest.int "id volume" 4 m.meth_total_volume.(meth p "id");
  check Alcotest.int "main max var" 3 m.meth_max_var.(meth p "main");
  check Alcotest.int "id max var" 2 m.meth_max_var.(meth p "id")

let test_metric_fields () =
  let _, _, m = setup () in
  check Alcotest.int "h3 total field" 2 m.obj_total_field.(3);
  check Alcotest.int "h3 max field" 2 m.obj_max_field.(3);
  check Alcotest.int "h0 no fields" 0 m.obj_total_field.(0)

let test_metric_max_var_field () =
  let p, _, m = setup () in
  (* main's b points to h3 whose max field set is 2 *)
  check Alcotest.int "main" 2 m.meth_max_var_field.(meth p "main");
  check Alcotest.int "id" 0 m.meth_max_var_field.(meth p "id")

let test_metric_pointed_by () =
  let _, _, m = setup () in
  check Alcotest.int "h0 pbv" 4 m.pointed_by_vars.(0) (* x, y, p, $ret *);
  check Alcotest.int "h1 pbv" 4 m.pointed_by_vars.(1);
  check Alcotest.int "h2 pbv" 1 m.pointed_by_vars.(2) (* y *);
  check Alcotest.int "h3 pbv" 1 m.pointed_by_vars.(3) (* b *);
  check Alcotest.int "h0 pbo" 1 m.pointed_by_objs.(0) (* (h3, f) *);
  check Alcotest.int "h3 pbo" 0 m.pointed_by_objs.(3)

(* ---------- heuristic threshold boundaries (strict >) ---------- *)

let skips base m h =
  match Heuristics.select base.Analysis.solution m h with
  | Refine.None_ -> Alcotest.fail "select returns All_except"
  | Refine.All_except { skip_objects; skip_sites } ->
    (Int_set.to_sorted_list skip_objects, Int_set.cardinal skip_sites)

let test_heuristic_a_objects () =
  let _, base, m = setup () in
  let objs k = fst (skips base m (Heuristics.A { k; l = 1000; m = 1000 })) in
  check (Alcotest.list Alcotest.int) "k=3 flags h0,h1" [ 0; 1 ] (objs 3);
  check (Alcotest.list Alcotest.int) "k=4 strict" [] (objs 4);
  check (Alcotest.list Alcotest.int) "k=0 flags all pointed" [ 0; 1; 2; 3 ] (objs 0)

let test_heuristic_a_sites () =
  let _, base, m = setup () in
  let sites l mm = snd (skips base m (Heuristics.A { k = 1000; l; m = mm })) in
  check Alcotest.int "l=1 flags" 1 (sites 1 1000);
  check Alcotest.int "l=2 strict" 0 (sites 2 1000);
  (* metric 4 path: id's max var-field is 0, so even m=0 only fires via
     in-flow... m = -1 would flag, but the metric is >= 0, so use 0 > -1 *)
  check Alcotest.int "m very low" 1 (sites 1000 (-1))

let test_heuristic_b () =
  let _, base, m = setup () in
  let sel p q = skips base m (Heuristics.B { p; q }) in
  check Alcotest.int "p=3 flags id site" 1 (snd (sel 3 1000));
  check Alcotest.int "p=4 strict" 0 (snd (sel 4 1000));
  check (Alcotest.list Alcotest.int) "q=1 flags h3" [ 3 ] (fst (sel 1000 1));
  check (Alcotest.list Alcotest.int) "q=2 strict" [] (fst (sel 1000 2))

(* ---------- the paper's default constants, pinned exactly ---------- *)

(* Hand-built metrics place one entity exactly at each default threshold
   and one just above it, so these tests freeze both the strict-[>]
   semantics and the shipped constants: K/L/M = 100/100/200 for Heuristic A,
   P/Q = 10000/10000 for Heuristic B. The program has a single call site,
   (invo 0 -> id), and four allocation sites. *)
let blank_metrics p : Introspection.t =
  {
    in_flow = Array.make (P.n_invos p) 0;
    meth_total_volume = Array.make (P.n_meths p) 0;
    meth_max_var = Array.make (P.n_meths p) 0;
    obj_total_field = Array.make (P.n_heaps p) 0;
    obj_max_field = Array.make (P.n_heaps p) 0;
    meth_max_var_field = Array.make (P.n_meths p) 0;
    pointed_by_vars = Array.make (P.n_heaps p) 0;
    pointed_by_objs = Array.make (P.n_heaps p) 0;
  }

let test_default_a_constants () =
  let p, base, _ = setup () in
  let id = meth p "id" in
  let objs m = fst (skips base m Heuristics.default_a) in
  let sites m = snd (skips base m Heuristics.default_a) in
  (* K = 100: an object pointed by exactly 100 variables is still refined *)
  let pbv n =
    let m = blank_metrics p in
    m.pointed_by_vars.(0) <- n;
    m
  in
  check (Alcotest.list Alcotest.int) "pointed-by-vars 100 refined" [] (objs (pbv 100));
  check (Alcotest.list Alcotest.int) "pointed-by-vars 101 skipped" [ 0 ] (objs (pbv 101));
  (* L = 100: argument in-flow at the call site *)
  let inflow n =
    let m = blank_metrics p in
    m.in_flow.(0) <- n;
    m
  in
  check Alcotest.int "in-flow 100 refined" 0 (sites (inflow 100));
  check Alcotest.int "in-flow 101 skipped" 1 (sites (inflow 101));
  (* M = 200: the callee's max var-field points-to *)
  let mvf n =
    let m = blank_metrics p in
    m.meth_max_var_field.(id) <- n;
    m
  in
  check Alcotest.int "max var-field 200 refined" 0 (sites (mvf 200));
  check Alcotest.int "max var-field 201 skipped" 1 (sites (mvf 201))

let test_default_b_constants () =
  let p, base, _ = setup () in
  let id = meth p "id" in
  let objs m = fst (skips base m Heuristics.default_b) in
  let sites m = snd (skips base m Heuristics.default_b) in
  (* P = 10000: the callee's total points-to volume *)
  let vol n =
    let m = blank_metrics p in
    m.meth_total_volume.(id) <- n;
    m
  in
  check Alcotest.int "volume 10000 refined" 0 (sites (vol 10000));
  check Alcotest.int "volume 10001 skipped" 1 (sites (vol 10001));
  (* Q = 10000: the total-field x pointed-by-vars product *)
  let product a b =
    let m = blank_metrics p in
    m.obj_total_field.(0) <- a;
    m.pointed_by_vars.(0) <- b;
    m
  in
  check (Alcotest.list Alcotest.int) "product 100x100 refined" [] (objs (product 100 100));
  check (Alcotest.list Alcotest.int) "product 10001x1 skipped" [ 0 ] (objs (product 10001 1));
  check (Alcotest.list Alcotest.int) "product 2x5001 skipped" [ 0 ] (objs (product 2 5001))

let test_default_constants_literal () =
  (* the shipped defaults ARE the paper's constants *)
  match (Heuristics.default_a, Heuristics.default_b) with
  | Heuristics.A { k = 100; l = 100; m = 200 }, Heuristics.B { p = 10000; q = 10000 } -> ()
  | _ -> Alcotest.fail "default heuristic constants drifted from the paper's"

let test_selection_stats () =
  let _, base, m = setup () in
  let refine = Heuristics.select base.solution m (Heuristics.A { k = 3; l = 1; m = 1000 }) in
  let st = Heuristics.selection_stats base.solution refine in
  check Alcotest.int "sites skipped" 1 st.sites_skipped;
  check Alcotest.int "sites total" 1 st.sites_total;
  check Alcotest.int "objects skipped" 2 st.objects_skipped;
  check Alcotest.int "objects total" 4 st.objects_total;
  check (Alcotest.float 0.001) "pct sites" 100.0 (Heuristics.pct_sites st);
  check (Alcotest.float 0.001) "pct objects" 50.0 (Heuristics.pct_objects st)

let test_heuristic_names () =
  check Alcotest.string "A name" "IntroA" (Heuristics.name Heuristics.default_a);
  check Alcotest.string "B name" "IntroB" (Heuristics.name Heuristics.default_b);
  check Alcotest.string "A str" "IntroA(K=100,L=100,M=200)"
    (Heuristics.to_string Heuristics.default_a);
  check Alcotest.string "B str" "IntroB(P=10000,Q=10000)"
    (Heuristics.to_string Heuristics.default_b)

(* ---------- the paper's Datalog metric queries agree ---------- *)

let test_datalog_metric_queries () =
  (* Execute §3's in-flow query (and the volume / pointed-by-vars analogues)
     on the Datalog engine over the reference backend's result, and compare
     with the native Introspection computation. *)
  List.iter
    (fun p ->
      let base = Analysis.run_plain p Flavors.Insensitive in
      let native = Introspection.compute base.solution in
      let strategy = Ipa_core.Flavors.strategy p Flavors.Insensitive in
      let d = Ipa_core.Datalog_backend.run_plain p strategy in
      let get tbl i = Option.value ~default:0 (Hashtbl.find_opt tbl i) in
      let in_flow = Ipa_core.Datalog_metrics.in_flow p d in
      Array.iteri
        (fun invo expected ->
          check Alcotest.int (Printf.sprintf "in-flow %d" invo) expected (get in_flow invo))
        native.in_flow;
      let vol = Ipa_core.Datalog_metrics.meth_total_volume p d in
      Array.iteri
        (fun m expected ->
          check Alcotest.int (Printf.sprintf "volume %d" m) expected (get vol m))
        native.meth_total_volume;
      let pbv = Ipa_core.Datalog_metrics.pointed_by_vars p d in
      Array.iteri
        (fun h expected ->
          check Alcotest.int (Printf.sprintf "pbv %d" h) expected (get pbv h))
        native.pointed_by_vars)
    [
      Ipa_testlib.parse_exn src;
      Ipa_testlib.parse_exn Ipa_testlib.boxes_src;
      Ipa_testlib.random_program 600;
      Ipa_testlib.random_program 601;
    ]

(* ---------- hard-coded static policies ---------- *)

let test_static_policy () =
  let prefix pre name =
    String.length name >= String.length pre && String.sub name 0 (String.length pre) = pre
  in
  let spec = Option.get (Ipa_synthetic.Dacapo.find "hsqldb") in
  let p = Ipa_synthetic.Dacapo.build ~scale:0.3 spec in
  let budget = 1_500_000 in
  let flavor = Flavors.Object_sens { depth = 2; heap = 1 } in
  (* the budget is calibrated so the full analysis exceeds it *)
  let full = Analysis.run_plain ~budget p flavor in
  check Alcotest.bool "full exceeds budget" true full.timed_out;
  let base = Analysis.run_plain ~budget p Flavors.Insensitive in
  (* the right expert list rescues it *)
  let hub_policy =
    Heuristics.static_policy base.solution
      ~skip_class:(fun c -> prefix "Hub" c || prefix "Item" c)
      ~skip_meth:(fun m -> prefix "hget" m || prefix "hput" m || prefix "use" m || prefix "hstep" m)
  in
  let rescued =
    Analysis.run_mixed ~budget p ~default:Flavors.Insensitive ~refined:flavor ~refine:hub_policy
  in
  check Alcotest.bool "hub policy rescues" false rescued.timed_out;
  Solution.self_check_exn rescued.solution;
  (* a wrong expert list does not *)
  let wrong =
    Heuristics.static_policy base.solution
      ~skip_class:(prefix "Frame")
      ~skip_meth:(prefix "fpop")
  in
  let still_dead =
    Analysis.run_mixed ~budget p ~default:Flavors.Insensitive ~refined:flavor ~refine:wrong
  in
  check Alcotest.bool "wrong policy does not" true still_dead.timed_out;
  (* selection semantics: skipped objects are exactly the matching classes *)
  (match hub_policy with
  | Refine.All_except { skip_objects; _ } ->
    let ok = ref true in
    for h = 0 to Ipa_ir.Program.n_heaps p - 1 do
      let cname =
        Ipa_ir.Program.class_name p (Ipa_ir.Program.heap_info p h).heap_class
      in
      let expected = prefix "Hub" cname || prefix "Item" cname in
      if Ipa_support.Int_set.mem skip_objects h <> expected then ok := false
    done;
    check Alcotest.bool "object selection by class" true !ok
  | Refine.None_ -> Alcotest.fail "expected All_except")

(* ---------- driver ---------- *)

let test_driver_labels () =
  let p = Ipa_testlib.parse_exn src in
  let ir = Analysis.run_introspective p (Flavors.Object_sens { depth = 2; heap = 1 })
      Heuristics.default_a in
  check Alcotest.string "base label" "insens" ir.base.label;
  check Alcotest.string "second label" "2objH-IntroA" ir.second.label;
  check Alcotest.bool "base complete" false ir.base.timed_out;
  check Alcotest.bool "second complete" false ir.second.timed_out

let test_driver_budget () =
  let p = Ipa_testlib.parse_exn src in
  let ir = Analysis.run_introspective ~budget:3 p (Flavors.Object_sens { depth = 2; heap = 1 })
      Heuristics.default_a in
  check Alcotest.bool "base budget applies" true ir.base.timed_out

let test_driver_default_heuristics_keep_precision_here () =
  (* In this tiny program nothing exceeds the default thresholds, so the
     introspective run equals the full analysis. *)
  let p = Ipa_testlib.parse_exn src in
  let flavor = Flavors.Object_sens { depth = 2; heap = 1 } in
  let full = Analysis.run_plain p flavor in
  List.iter
    (fun h ->
      let ir = Analysis.run_introspective p flavor h in
      check (Alcotest.list Alcotest.string)
        (Heuristics.name h ^ " = full here")
        (Ipa_testlib.canon_native full.solution)
        (Ipa_testlib.canon_native ir.second.solution))
    [ Heuristics.default_a; Heuristics.default_b ]

let test_driver_self_check () =
  (* Both passes of the two-pass recipe — the insensitive base and the mixed
     second analysis — must satisfy every solver invariant. *)
  let assert_sound what (s : Solution.t) =
    match Solution.self_check s with
    | [] -> ()
    | errs -> Alcotest.failf "%s: %s" what (List.hd errs)
  in
  let flavor = Flavors.Object_sens { depth = 2; heap = 1 } in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun h ->
          let ir = Analysis.run_introspective p flavor h in
          assert_sound (name ^ " base") ir.base.solution;
          assert_sound (name ^ " second " ^ Heuristics.name h) ir.second.solution)
        [ Heuristics.default_a; Heuristics.default_b ])
    [
      ("metrics program", Ipa_testlib.parse_exn src);
      ("boxes", Ipa_testlib.parse_exn Ipa_testlib.boxes_src);
      ("random 620", Ipa_testlib.random_program 620);
      ("random 621", Ipa_testlib.random_program 621);
    ]

let () =
  Alcotest.run "introspection"
    [
      ( "metrics",
        [
          Alcotest.test_case "in-flow" `Quick test_metric_in_flow;
          Alcotest.test_case "volume" `Quick test_metric_volume;
          Alcotest.test_case "field metrics" `Quick test_metric_fields;
          Alcotest.test_case "max var-field" `Quick test_metric_max_var_field;
          Alcotest.test_case "pointed-by" `Quick test_metric_pointed_by;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "A objects boundary" `Quick test_heuristic_a_objects;
          Alcotest.test_case "A sites boundary" `Quick test_heuristic_a_sites;
          Alcotest.test_case "B boundaries" `Quick test_heuristic_b;
          Alcotest.test_case "default A constants (100/100/200)" `Quick test_default_a_constants;
          Alcotest.test_case "default B constants (10000/10000)" `Quick test_default_b_constants;
          Alcotest.test_case "defaults are the paper's" `Quick test_default_constants_literal;
          Alcotest.test_case "selection stats" `Quick test_selection_stats;
          Alcotest.test_case "names" `Quick test_heuristic_names;
        ] );
      ( "static policy",
        [ Alcotest.test_case "rescues and brittleness" `Quick test_static_policy ] );
      ( "datalog queries",
        [ Alcotest.test_case "section 3 queries agree" `Quick test_datalog_metric_queries ] );
      ( "driver",
        [
          Alcotest.test_case "labels" `Quick test_driver_labels;
          Alcotest.test_case "budget" `Quick test_driver_budget;
          Alcotest.test_case "precision kept below thresholds" `Quick
            test_driver_default_heuristics_keep_precision_here;
          Alcotest.test_case "both passes self-check" `Quick test_driver_self_check;
        ] );
    ]
