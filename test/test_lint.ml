(* Tests for the lint engine: rule registry and selection, syntactic and
   solution-backed rules on handcrafted programs, reporter output shapes
   (SARIF 2.1.0 validated through the Json parser), baseline round-trips,
   jobs=1 vs jobs=N byte-identity, and the QCheck monotonicity property
   (monotone finding sets never grow as analysis precision increases). *)

module P = Ipa_ir.Program
module Diagnostic = Ipa_ir.Diagnostic
module Lint = Ipa_lint.Lint
module Report = Ipa_lint.Report
module Baseline = Ipa_lint.Baseline
module Json = Ipa_support.Json
module Analysis = Ipa_core.Analysis
module Flavors = Ipa_core.Flavors

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let qtest ?(count = 10) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let flavor name = Option.get (Flavors.of_string name)
let solve ?(analysis = "insens") p = (Analysis.run_plain p (flavor analysis)).Analysis.solution

let run_rule ctx id =
  let rule = Option.get (Lint.find_rule id) in
  fst (Lint.run ~rules:[ rule ] ctx)

let entities ds = List.map (fun (d : Diagnostic.t) -> d.entity) ds

(* A fixture exercising every syntactic rule at least once. *)
let syntactic_src =
  {|
class Object { }
class E extends Object { }
class E2 extends E { }
class Ghost extends Object { }
class Orphan extends Object {
  method orphan/0 () { return this; }
}
class A extends Object {
  field w;
}
class Main {
  static method main/0 () {
    var a, u, c, x;
    catch (E) x;
    catch (E2) x;
    a = new A;
    a.w = a;
    c = (Ghost) a;
  }
}
entry Main::main/0;
|}

let syntactic_ctx () = Lint.make_ctx (Ipa_testlib.parse_exn syntactic_src)

let test_unreachable_method () =
  let ds = run_rule (syntactic_ctx ()) "IPA-S001" in
  check (Alcotest.list Alcotest.string) "S001 entities" [ "Orphan::orphan/0" ] (entities ds)

let test_unused_variable () =
  let ds = run_rule (syntactic_ctx ()) "IPA-S002" in
  (* [u] is never referenced; [x] is used by the catch clauses, [this] in
     orphan/0 and the implicit return variables are exempt. *)
  check Alcotest.int "one unused var" 1 (List.length ds);
  let d = List.hd ds in
  check Alcotest.bool "names u" true (contains d.Diagnostic.message "u");
  check Alcotest.string "severity" "info" (Diagnostic.severity_to_string d.severity)

let test_write_only_field () =
  let ds = run_rule (syntactic_ctx ()) "IPA-S003" in
  check (Alcotest.list Alcotest.string) "S003 entities" [ "A::w" ] (entities ds);
  check Alcotest.bool "written but never read" true
    (contains (List.hd ds).Diagnostic.message "written but never read")

let test_impossible_cast () =
  let ds = run_rule (syntactic_ctx ()) "IPA-S004" in
  check Alcotest.int "one impossible cast" 1 (List.length ds);
  let d = List.hd ds in
  check Alcotest.bool "anchored to a main site" true (contains d.Diagnostic.entity "Main::main/0#");
  check Alcotest.bool "names Ghost" true (contains d.message "Ghost")

let test_shadowed_catch () =
  let ds = run_rule (syntactic_ctx ()) "IPA-S005" in
  check (Alcotest.list Alcotest.string) "S005 entities" [ "Main::main/0@catch1" ] (entities ds);
  check Alcotest.bool "E2 shadowed by E" true (contains (List.hd ds).Diagnostic.message "E")

let test_wf_rule_fans_out () =
  (* A handcrafted ill-formed program: IPA-W000 reports per-check ids. *)
  let classes : P.class_info array =
    [|
      { class_name = "Object"; super = None; interfaces = []; is_interface = false; declared = [] };
      { class_name = "I"; super = Some 0; interfaces = []; is_interface = true; declared = [] };
    |]
  in
  let p =
    P.make ~classes ~fields:[||] ~sigs:[||] ~meths:[||] ~vars:[||] ~heaps:[||] ~invos:[||]
      ~entries:[] ()
  in
  let ds = run_rule (Lint.make_ctx p) "IPA-W000" in
  (* Interface I extends a class: IPA-W003. *)
  check (Alcotest.list Alcotest.string) "wf rule ids" [ "IPA-W003" ]
    (List.map (fun (d : Diagnostic.t) -> d.rule) ds)

(* ---------- solution-backed rules ---------- *)

(* boxes_src: under insens both A and B flow into [rb], so the (B) cast may
   fail; 2-object-sensitivity proves it safe. *)
let test_may_fail_cast_precision () =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let coarse = run_rule (Lint.make_ctx ~solution:(solve p) p) "IPA-P001" in
  check Alcotest.int "insens flags the cast" 1 (List.length coarse);
  let d = List.hd coarse in
  check Alcotest.bool "anchored to main site" true (contains d.Diagnostic.entity "Main::main/0#");
  check Alcotest.int "one witness" 1 (List.length d.witnesses);
  check Alcotest.bool "witness is the A object" true (contains (List.hd d.witnesses) "new A");
  let fine = run_rule (Lint.make_ctx ~solution:(solve ~analysis:"2objH" p) p) "IPA-P001" in
  check Alcotest.int "2objH proves it safe" 0 (List.length fine)

let test_solution_rules_silent_without_solution () =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let sem = List.filter (fun r -> r.Lint.source = Lint.Solution_backed) Lint.all_rules in
  let ds, timings = Lint.run ~rules:sem (Lint.make_ctx p) in
  check Alcotest.int "no findings" 0 (List.length ds);
  check Alcotest.int "all rules still timed" (List.length sem) (List.length timings)

let test_megamorphic_call () =
  (* All three allocations flow out of pick/0 through one variable, so the
     [o.go()] site resolves to three targets under any flavor. *)
  let src =
    {|
class Object { }
class Base extends Object { method go/0 () { return this; } }
class C1 extends Base { method go/0 () { return this; } }
class C2 extends Base { method go/0 () { return this; } }
class Main {
  static method main/0 () {
    var o, r;
    o = Main::pick();
    r = o.go();
  }
  static method pick/0 () {
    var a;
    a = new Base; a = new C1; a = new C2;
    return a;
  }
}
entry Main::main/0;
|}
  in
  let p = Ipa_testlib.parse_exn src in
  let s = solve p in
  let ds = run_rule (Lint.make_ctx ~solution:s p) "IPA-P004" in
  check Alcotest.int "one megamorphic site" 1 (List.length ds);
  check Alcotest.int "three targets" 3 (List.length (List.hd ds).Diagnostic.witnesses);
  (* Below the threshold the rule is silent. *)
  let ds5 = run_rule (Lint.make_ctx ~solution:s ~megamorphic_threshold:5 p) "IPA-P004" in
  check Alcotest.int "threshold respected" 0 (List.length ds5)

let test_taint_flow () =
  let src =
    {|
class Object { }
class Secret extends Object { }
class Sink extends Object {
  method consume/1 (x) { return x; }
}
class Main {
  static method main/0 () {
    var s, k, r;
    s = new Secret;
    k = new Sink;
    r = k.consume(s);
  }
}
entry Main::main/0;
|}
  in
  let p = Ipa_testlib.parse_exn src in
  let ds = run_rule (Lint.make_ctx ~solution:(solve p) p) "IPA-P005" in
  check Alcotest.int "one taint finding" 1 (List.length ds);
  let d = List.hd ds in
  check Alcotest.bool "sink argument entity" true (contains d.Diagnostic.entity "!0");
  check Alcotest.string "severity" "error" (Diagnostic.severity_to_string d.severity);
  check Alcotest.bool "has a value-flow path" true (List.length d.witnesses > 0)

(* ---------- registry and selection ---------- *)

let test_registry_order () =
  let ids = List.map (fun r -> r.Lint.id) Lint.all_rules in
  check (Alcotest.list Alcotest.string) "registry in family order"
    [
      "IPA-W000"; "IPA-S001"; "IPA-S002"; "IPA-S003"; "IPA-S004"; "IPA-S005"; "IPA-P001";
      "IPA-P002"; "IPA-P003"; "IPA-P004"; "IPA-P005"; "IPA-P006";
    ]
    ids

let test_select_rules () =
  let ids spec = Result.map (List.map (fun r -> r.Lint.id)) (Lint.select_rules spec) in
  check Alcotest.int "None = all" (List.length Lint.all_rules)
    (List.length (Result.get_ok (ids None)));
  check (Alcotest.list Alcotest.string) "explicit ids"
    [ "IPA-P005"; "IPA-S001" ]
    (List.sort compare (Result.get_ok (ids (Some "IPA-S001,IPA-P005"))));
  (match ids (Some "syntactic") with
  | Ok l -> check Alcotest.int "syntactic family" 6 (List.length l)
  | Error e -> Alcotest.failf "syntactic: %s" e);
  (match ids (Some "all,IPA-P006-") with
  | Ok l ->
    check Alcotest.int "exclusion" (List.length Lint.all_rules - 1) (List.length l);
    check Alcotest.bool "P006 excluded" false (List.mem "IPA-P006" l)
  | Error e -> Alcotest.failf "exclusion: %s" e);
  match ids (Some "IPA-S001,bogus") with
  | Ok _ -> Alcotest.fail "expected unknown-rule error"
  | Error e -> check Alcotest.bool "names the bogus rule" true (contains e "bogus")

(* ---------- determinism ---------- *)

let test_jobs_byte_identity () =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let ctx = Lint.make_ctx ~solution:(solve p) p in
  let render jobs =
    let ds, _ = Lint.run ~jobs ctx in
    (Report.jsonl ds, Report.render Sarif ds, Report.human ds)
  in
  let j1, s1, h1 = render 1 in
  let j4, s4, h4 = render 4 in
  check Alcotest.string "jsonl identical" j1 j4;
  check Alcotest.string "sarif identical" s1 s4;
  check Alcotest.string "human identical" h1 h4

let test_findings_sorted_and_deduped () =
  let ctx = syntactic_ctx () in
  let ds, _ = Lint.run ctx in
  let sorted = List.sort_uniq Diagnostic.compare ds in
  check Alcotest.int "already deduped" (List.length sorted) (List.length ds);
  check Alcotest.bool "already sorted" true
    (List.for_all2 (fun a b -> Diagnostic.compare a b = 0) ds sorted)

(* ---------- source spans through the front-end ---------- *)

let test_spans_from_file () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let path = Filename.concat dir "fixture.jir" in
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc syntactic_src);
      match Ipa_frontend.Jir.parse_file path with
      | Error e -> Alcotest.failf "parse_file: %s" (Ipa_frontend.Jir.error_to_string e)
      | Ok p ->
        let ds = run_rule (Lint.make_ctx p) "IPA-S003" in
        let d = List.hd ds in
        check Alcotest.string "span file" path d.Diagnostic.span.file;
        (* [field w;] is on line 10 of the fixture (leading newline first). *)
        check Alcotest.int "span line" 10 d.span.line;
        check Alcotest.bool "span col set" true (d.span.col >= 1))

(* ---------- reporters ---------- *)

let test_jsonl_shape () =
  let ds, _ = Lint.run (syntactic_ctx ()) in
  let lines = String.split_on_char '\n' (String.trim (Report.jsonl ds)) in
  check Alcotest.int "one line per finding" (List.length ds) (List.length lines);
  List.iter2
    (fun line (d : Diagnostic.t) ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "bad jsonl line %S: %s" line e
      | Ok j ->
        check (Alcotest.option Alcotest.string) "rule" (Some d.rule)
          (Option.bind (Json.member "rule" j) Json.to_str);
        check (Alcotest.option Alcotest.string) "entity" (Some d.entity)
          (Option.bind (Json.member "entity" j) Json.to_str);
        check (Alcotest.option Alcotest.string) "fingerprint" (Some (Diagnostic.fingerprint d))
          (Option.bind (Json.member "fingerprint" j) Json.to_str))
    lines ds

let test_sarif_shape () =
  (* Validate the SARIF 2.1.0 shape through the strict Json parser. *)
  let ds, _ = Lint.run (syntactic_ctx ()) in
  check Alcotest.bool "has findings" true (ds <> []);
  let j =
    match Json.of_string (Report.sarif ds) with
    | Ok j -> j
    | Error e -> Alcotest.failf "sarif is not valid JSON: %s" e
  in
  let str path j =
    match Option.bind (Json.member path j) Json.to_str with
    | Some s -> s
    | None -> Alcotest.failf "missing string member %s" path
  in
  check Alcotest.string "version" "2.1.0" (str "version" j);
  check Alcotest.bool "schema names sarif 2.1.0" true
    (contains (str "$schema" j) "sarif" && contains (str "$schema" j) "2.1.0");
  let run =
    match Option.bind (Json.member "runs" j) Json.to_list with
    | Some [ r ] -> r
    | _ -> Alcotest.fail "expected exactly one run"
  in
  let driver = Option.get (Json.member "tool" run) |> Json.member "driver" |> Option.get in
  check Alcotest.string "driver name" "introspect" (str "name" driver);
  let rules = Option.get (Json.to_list (Option.get (Json.member "rules" driver))) in
  check Alcotest.int "one descriptor per registry rule" (List.length Lint.all_rules)
    (List.length rules);
  List.iter
    (fun r ->
      if Json.member "id" r = None || Json.member "shortDescription" r = None then
        Alcotest.fail "rule descriptor lacks id/shortDescription")
    rules;
  let results = Option.get (Json.to_list (Option.get (Json.member "results" run))) in
  check Alcotest.int "one result per finding" (List.length ds) (List.length results);
  List.iter2
    (fun r (d : Diagnostic.t) ->
      check Alcotest.string "ruleId" d.rule (str "ruleId" r);
      let level = str "level" r in
      check Alcotest.bool "level vocabulary" true (List.mem level [ "error"; "warning"; "note" ]);
      let msg = Option.get (Json.member "message" r) in
      check Alcotest.bool "message text" true (contains (str "text" msg) d.message);
      let fp = Option.get (Json.member "partialFingerprints" r) in
      check (Alcotest.option Alcotest.string) "stable fingerprint key"
        (Some (Diagnostic.fingerprint d))
        (Option.bind (Json.member "ipaFindingId/v1" fp) Json.to_str))
    results ds

(* ---------- baselines ---------- *)

let test_baseline_roundtrip () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let path = Filename.concat dir "baseline.json" in
      let ds, _ = Lint.run (syntactic_ctx ()) in
      Baseline.save path ds;
      let b = match Baseline.load path with Ok b -> b | Error e -> Alcotest.fail e in
      check Alcotest.int "round-trip suppresses everything" 0
        (List.length (Baseline.filter_new b ds));
      (* A finding with a different (rule, entity) identity is new; the same
         identity at a different span or message is not. *)
      let d = List.hd ds in
      let moved = { d with span = { d.span with line = d.span.line + 100 }; message = "reworded" } in
      check Alcotest.int "span/message changes stay suppressed" 0
        (List.length (Baseline.filter_new b [ moved ]));
      let novel = { d with entity = d.entity ^ "'" } in
      check (Alcotest.list Alcotest.string) "new identity surfaces"
        [ novel.entity ]
        (entities (Baseline.filter_new b [ novel ])))

let test_baseline_load_errors () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let path = Filename.concat dir "bad.json" in
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc "{ nope");
      (match Baseline.load path with
      | Ok _ -> Alcotest.fail "expected load error"
      | Error e -> check Alcotest.bool "mentions the path" true (contains e path));
      match Baseline.load (Filename.concat dir "absent.json") with
      | Ok _ -> Alcotest.fail "expected missing-file error"
      | Error e -> check Alcotest.bool "mentions the missing path" true (contains e "absent.json"))

(* ---------- monotonicity ---------- *)

(* Finding sets of monotone rules — keyed by (rule id, entity), the baseline
   identity — never grow as context-sensitivity increases: every finding
   under a finer analysis must also exist under the coarser one. The chain
   matches the paper's precision ordering: insens ⊒ 2typeH ⊒ 2objH. *)
let monotone_keys p analysis =
  let rules = List.filter (fun r -> r.Lint.monotone) Lint.all_rules in
  let ctx = Lint.make_ctx ~solution:(solve ~analysis p) ~megamorphic_threshold:2 p in
  let ds, _ = Lint.run ~rules ctx in
  List.map (fun (d : Diagnostic.t) -> (d.rule, d.entity)) ds

let test_monotone_rules_shrink =
  qtest ~count:8 "monotone finding sets shrink with precision"
    (QCheck2.Gen.int_range 500 699)
    (fun seed ->
      let p = Ipa_testlib.random_program seed in
      let insens = monotone_keys p "insens" in
      let type2 = monotone_keys p "2typeH" in
      let obj2 = monotone_keys p "2objH" in
      let subset fine coarse name =
        List.iter
          (fun key ->
            if not (List.mem key coarse) then
              QCheck2.Test.fail_reportf "seed %d: finding (%s, %s) in %s but not in the coarser run"
                seed (fst key) (snd key) name)
          fine
      in
      subset type2 insens "2typeH vs insens";
      subset obj2 type2 "2objH vs 2typeH";
      true)

let () =
  Alcotest.run "lint"
    [
      ( "syntactic",
        [
          Alcotest.test_case "unreachable method" `Quick test_unreachable_method;
          Alcotest.test_case "unused variable" `Quick test_unused_variable;
          Alcotest.test_case "write-only field" `Quick test_write_only_field;
          Alcotest.test_case "impossible cast" `Quick test_impossible_cast;
          Alcotest.test_case "shadowed catch" `Quick test_shadowed_catch;
          Alcotest.test_case "wf fan-out" `Quick test_wf_rule_fans_out;
        ] );
      ( "semantic",
        [
          Alcotest.test_case "may-fail cast vs precision" `Quick test_may_fail_cast_precision;
          Alcotest.test_case "silent without solution" `Quick
            test_solution_rules_silent_without_solution;
          Alcotest.test_case "megamorphic call" `Quick test_megamorphic_call;
          Alcotest.test_case "taint flow" `Quick test_taint_flow;
        ] );
      ( "registry",
        [
          Alcotest.test_case "id order" `Quick test_registry_order;
          Alcotest.test_case "selection" `Quick test_select_rules;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs byte-identity" `Quick test_jobs_byte_identity;
          Alcotest.test_case "sorted and deduped" `Quick test_findings_sorted_and_deduped;
        ] );
      ( "spans", [ Alcotest.test_case "file positions" `Quick test_spans_from_file ] );
      ( "reporters",
        [
          Alcotest.test_case "jsonl" `Quick test_jsonl_shape;
          Alcotest.test_case "sarif 2.1.0" `Quick test_sarif_shape;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round-trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "load errors" `Quick test_baseline_load_errors;
        ] );
      ("monotonicity", [ test_monotone_rules_shrink ]);
    ]
