(* Tests for the client-analysis library and cost diagnostics. *)

module P = Ipa_ir.Program
module Analysis = Ipa_core.Analysis
module Flavors = Ipa_core.Flavors
module Devirt = Ipa_clients.Devirtualize
module Casts = Ipa_clients.Cast_check
module Exns = Ipa_clients.Exception_report
module Cg = Ipa_clients.Callgraph_export
module Diag = Ipa_core.Diagnostics

let check = Alcotest.check
let parse = Ipa_testlib.parse_exn
let insens = Flavors.Insensitive
let obj2 = Flavors.Object_sens { depth = 2; heap = 1 }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let poly_src = {|
class Object { }
class A extends Object { method go/0 () { return this; } }
class B extends Object { method go/0 () { return this; } }
class Main {
  static method dead_code/0 () { var d, r; d = new A; r = d.go(); }
  static method main/0 () {
    var x, a, r1, r2;
    x = new A;
    x = new B;
    a = new A;
    r1 = x.go();
    r2 = a.go();
  }
}
entry Main::main/0;
|}

let test_devirt () =
  let r = Analysis.run_plain (parse poly_src) insens in
  let s = Devirt.summarize r.solution in
  (* x.go is polymorphic; a.go monomorphic; dead_code's call unreachable *)
  check Alcotest.int "mono" 1 s.monomorphic;
  check Alcotest.int "poly" 1 s.polymorphic;
  check Alcotest.int "dead" 1 s.unreachable;
  let reports = Devirt.analyze r.solution in
  check Alcotest.int "one report per virtual site" 3 (List.length reports);
  let poly_targets =
    List.concat_map
      (fun (d : Devirt.t) -> match d.verdict with Polymorphic ms -> ms | _ -> [])
      reports
  in
  check Alcotest.int "two targets" 2 (List.length poly_targets)

let test_casts () =
  let r = Analysis.run_plain (parse Ipa_testlib.boxes_src) insens in
  check Alcotest.int "one unsafe" 1 (Casts.unsafe_count r.solution);
  let reports = Casts.analyze r.solution in
  check Alcotest.int "one cast total" 1 (List.length reports);
  let c = List.hd reports in
  check Alcotest.int "one witness" 1 (List.length c.witnesses);
  (* witness is the A object flowing into the (B) cast *)
  check Alcotest.string "witness object" "Main::main/new A#2"
    (P.heap_full_name r.solution.program (List.hd c.witnesses));
  let precise = Analysis.run_plain (parse Ipa_testlib.boxes_src) obj2 in
  check Alcotest.int "precise finds none" 0 (Casts.unsafe_count precise.solution);
  check Alcotest.int "cast still reported" 1 (List.length (Casts.analyze precise.solution))

let exn_src = {|
class Object { }
class Err extends Object { }
class SubErr extends Err { }
class Main {
  static method risky/0 () { var e; e = new SubErr; throw e; }
  static method boom/0 () { var e; e = new Err; throw e; }
  static method main/0 () {
    var c;
    catch (SubErr) c;
    Main::risky();
    Main::boom();
  }
}
entry Main::main/0;
|}

let test_exception_report () =
  let r = Analysis.run_plain (parse exn_src) insens in
  let uncaught = Exns.uncaught r.solution in
  check Alcotest.int "one entry with escapes" 1 (List.length uncaught);
  let u = List.hd uncaught in
  check Alcotest.int "one escaped object" 1 (List.length u.objects);
  check Alcotest.string "escaped is Err" "Main::boom/new Err#0"
    (P.heap_full_name r.solution.program (List.hd u.objects));
  let handlers = Exns.handlers r.solution in
  check Alcotest.int "one handler" 1 (List.length handlers);
  let h = List.hd handlers in
  check Alcotest.int "binds the SubErr" 1 (List.length h.objects)

let test_dead_handler_reported () =
  let src = {|
class Object { }
class Err extends Object { }
class Main {
  static method main/0 () { var c, x; catch (Err) c; x = new Object; }
}
entry Main::main/0;
|} in
  let r = Analysis.run_plain (parse src) insens in
  let handlers = Exns.handlers r.solution in
  check Alcotest.int "handler listed" 1 (List.length handlers);
  check Alcotest.int "never reached" 0 (List.length (List.hd handlers).objects)

let test_callgraph_export () =
  let r = Analysis.run_plain (parse poly_src) insens in
  let edges = Cg.to_edges r.solution in
  (* main -> A::go, main -> B::go *)
  check Alcotest.int "two collapsed edges" 2 (List.length edges);
  let dot = Cg.to_dot r.solution in
  check Alcotest.bool "dot header" true (contains dot "digraph callgraph");
  check Alcotest.bool "entry marked" true (contains dot "Main::main/0\" [style=filled");
  check Alcotest.bool "edge present" true (contains dot "\"Main::main/0\" -> \"A::go/0\";");
  let path = Filename.temp_file "ipa_cg" ".dot" in
  Cg.write_dot r.solution ~path;
  let content = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  check Alcotest.string "file matches" dot content

let test_compare () =
  let p = parse Ipa_testlib.boxes_src in
  let coarse = Analysis.run_plain p insens in
  let fine = Analysis.run_plain p obj2 in
  let d = Ipa_clients.Compare.diff coarse.solution fine.solution in
  check Alcotest.int "one cast proven safe" 1 (List.length d.casts_proven_safe);
  check Alcotest.int "no casts lost" 0 (List.length d.casts_lost);
  check Alcotest.int "nothing devirtualized" 0 (List.length d.devirtualized);
  check Alcotest.int "no unreachable delta" 0 (List.length d.newly_unreachable);
  check Alcotest.int "no exception delta" 0 d.uncaught_delta;
  (* reflexive diff is empty *)
  let d0 = Ipa_clients.Compare.diff coarse.solution coarse.solution in
  check Alcotest.int "reflexive" 0
    (List.length d0.casts_proven_safe + List.length d0.casts_lost
    + List.length d0.devirtualized
    + List.length d0.newly_unreachable);
  (* the anti-refinement direction is reported, not hidden *)
  let d_rev = Ipa_clients.Compare.diff fine.solution coarse.solution in
  check Alcotest.int "reverse reports lost" 1 (List.length d_rev.casts_lost);
  (* different programs rejected *)
  let other = Analysis.run_plain (parse Ipa_testlib.boxes_src) insens in
  match Ipa_clients.Compare.diff coarse.solution other.solution with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_compare_poly_and_reach () =
  let p = parse poly_src in
  let coarse = Analysis.run_plain p insens in
  let fine = Analysis.run_plain p obj2 in
  let d = Ipa_clients.Compare.diff coarse.solution fine.solution in
  (* x still points to A and B under any context here: no devirt delta *)
  check Alcotest.int "still poly" 0 (List.length d.devirtualized);
  check Alcotest.int "no reach delta" 0 (List.length d.newly_unreachable)

let test_diagnostics () =
  let spec = Option.get (Ipa_synthetic.Dacapo.find "hsqldb") in
  let p = Ipa_synthetic.Dacapo.build ~scale:0.1 spec in
  let r = Analysis.run_plain p obj2 in
  let top = Diag.top_methods ~limit:3 r.solution in
  check Alcotest.int "three rows" 3 (List.length top);
  (* hotspots must be sorted and dominated by the hub users *)
  (match top with
  | a :: b :: _ ->
    check Alcotest.bool "sorted" true (a.Diag.vpt_tuples >= b.Diag.vpt_tuples);
    let name = P.meth_full_name p a.Diag.meth in
    check Alcotest.bool "hub user hottest" true
      (contains name "HubUser" || contains name "main")
  | _ -> Alcotest.fail "missing rows");
  let objs = Diag.top_objects ~limit:5 r.solution in
  check Alcotest.int "five object rows" 5 (List.length objs);
  (match objs with
  | a :: b :: _ -> check Alcotest.bool "objects sorted" true (a.Diag.pointed_by_nodes >= b.Diag.pointed_by_nodes)
  | _ -> Alcotest.fail "missing object rows");
  (* totals agree with solution stats *)
  let d = Diag.compute r.solution in
  let total = List.fold_left (fun acc (row : Diag.meth_row) -> acc + row.vpt_tuples) 0 d.methods in
  check Alcotest.int "tuples accounted" (Ipa_core.Solution.stats r.solution).vpt_tuples total

let test_printers_smoke () =
  (* The report printers must run on a representative solution (output is
     captured by the test harness; this guards against exceptions in the
     formatting paths). *)
  let p = parse exn_src in
  let r = Analysis.run_plain p insens in
  Exns.print r.solution;
  Diag.print ~limit:5 r.solution;
  Ipa_clients.Compare.print r.solution r.solution;
  let boxes_p = parse Ipa_testlib.boxes_src in
  Ipa_clients.Compare.print
    (Analysis.run_plain boxes_p insens).solution
    (Analysis.run_plain boxes_p obj2).solution

(* ---------- value-flow graph ---------- *)

module VF = Ipa_core.Value_flow
module Taint = Ipa_clients.Taint

let var_named p name =
  let rec go v =
    if v >= P.n_vars p then Alcotest.failf "no var named %s" name
    else if P.var_full_name p v = name then v
    else go (v + 1)
  in
  go 0

let test_value_flow_boxes () =
  let r = Analysis.run_plain (parse Ipa_testlib.boxes_src) insens in
  let g = VF.build r.solution in
  check Alcotest.bool "has nodes" true (VF.n_nodes g > 0);
  check Alcotest.bool "has edges" true (VF.n_edges g > 0);
  let v name = VF.var_node g (var_named r.solution.program name) in
  (match VF.kind g (v "Main::main/0$oa") with
  | VF.Var _ -> ()
  | _ -> Alcotest.fail "var node decodes to Var");
  (* oa flows through Box::set into the val slot and out through Box::get;
     the collapsed graph conflates the two boxes via the shared accessors,
     so both readers are reached. *)
  let reach = VF.reachable g ~seeds:[ v "Main::main/0$oa" ] in
  check Alcotest.bool "ra reached" true (Ipa_support.Int_set.mem reach (v "Main::main/0$ra"));
  check Alcotest.bool "rb reached" true (Ipa_support.Int_set.mem reach (v "Main::main/0$rb"));
  (match VF.find_path g ~seeds:[ v "Main::main/0$oa" ] ~target:(v "Main::main/0$ra") with
  | None -> Alcotest.fail "no witness path"
  | Some path ->
    check Alcotest.int "path starts at the seed" (v "Main::main/0$oa") (List.hd path);
    check Alcotest.int "path ends at the target" (v "Main::main/0$ra")
      (List.nth path (List.length path - 1)));
  (* blocking the field plane cuts the flow entirely *)
  let blocked n = match VF.kind g n with VF.Fld _ -> true | _ -> false in
  check Alcotest.bool "blocked field cuts flow" false
    (Ipa_support.Int_set.mem
       (VF.reachable ~blocked g ~seeds:[ v "Main::main/0$oa" ])
       (v "Main::main/0$ra"))

(* ---------- taint ---------- *)

let taint_direct_src = {|
class Object { }
class Secret { }
class TaintWell { static method mkSecret/0 () { var s; s = new Secret; return s; } }
class Sink { static method consume/1 (x) { } }
class Main {
  static method idf/1 (p) { return p; }
  static method main/0 () {
    var a, b, c;
    a = TaintWell::mkSecret();
    b = Main::idf(a);
    c = b;
    Sink::consume(c);
  }
}
entry Main::main/0;
|}

let test_taint_direct () =
  let r = Analysis.run_plain (parse taint_direct_src) insens in
  let t = Taint.analyze r.solution in
  (* the ret var of mkSecret and the Secret allocation target *)
  check Alcotest.int "seeds" 2 t.n_seeds;
  check Alcotest.int "one finding" 1 (List.length t.findings);
  let f = List.hd t.findings in
  check Alcotest.int "arg index" 0 f.arg;
  check Alcotest.string "resolved sink" "Sink::consume/1"
    (P.meth_full_name r.solution.program f.sink);
  (* witness runs from a seed to the tainted actual, through the identity
     helper's param/return edges *)
  let g = Option.get t.vfg in
  check Alcotest.bool "path nonempty" true (f.path <> []);
  check Alcotest.int "witness ends at the actual"
    (VF.var_node g (var_named r.solution.program "Main::main/0$c"))
    (List.nth f.path (List.length f.path - 1));
  check Alcotest.int "count agrees" 1 (Taint.tainted_sink_count r.solution)

let taint_heap_src = {|
class Object { }
class Secret { }
class TaintWell { static method mkSecret/0 () { var s; s = new Secret; return s; } }
class Sink { static method consume/1 (x) { } }
class Box {
  field val;
  method put/1 (x) { this.val = x; }
  method get/0 () { var t; t = this.val; return t; }
}
class Globals { static field cache; }
class Main {
  static method main/0 () {
    var s, b, o, g;
    s = TaintWell::mkSecret();
    b = new Box;
    b.put(s);
    o = b.get();
    Sink::consume(o);
    Globals::cache = s;
    g = Globals::cache;
    Sink::consume(g);
  }
}
entry Main::main/0;
|}

let test_taint_through_heap () =
  (* Taint crosses instance-field and static-field indirections. *)
  let r = Analysis.run_plain (parse taint_heap_src) insens in
  let t = Taint.analyze r.solution in
  check Alcotest.int "both sinks tainted" 2 (List.length t.findings);
  let g = Option.get t.vfg in
  let kinds f =
    List.map (fun n -> VF.kind g n) f.Taint.path
  in
  let has pred f = List.exists pred (kinds f) in
  check Alcotest.bool "one witness crosses a field slot" true
    (List.exists (has (function VF.Fld _ -> true | _ -> false)) t.findings);
  check Alcotest.bool "one witness crosses the static field" true
    (List.exists (has (function VF.Static_fld _ -> true | _ -> false)) t.findings)

let taint_sanitizer_src = {|
class Object { }
class Secret { }
class TaintWell { static method mkSecret/0 () { var s; s = new Secret; return s; } }
class Scrubber { static method scrub/1 (x) { return x; } }
class Sink { static method consume/1 (x) { } }
class Main {
  static method main/0 () {
    var s, w;
    s = TaintWell::mkSecret();
    w = Scrubber::scrub(s);
    Sink::consume(w);
  }
}
entry Main::main/0;
|}

let test_taint_sanitizer () =
  let r = Analysis.run_plain (parse taint_sanitizer_src) insens in
  check Alcotest.int "scrubbed flow is cut" 0 (Taint.tainted_sink_count r.solution);
  (* the cut is the sanitizer, not a missing edge: dropping the sanitizer
     pattern resurrects the finding *)
  let spec = { Taint.default_spec with sanitizers = [] } in
  check Alcotest.int "without sanitizers it flows" 1
    (Taint.tainted_sink_count ~spec r.solution)

let test_taint_no_source_fast_path () =
  let r = Analysis.run_plain (parse poly_src) insens in
  let t = Taint.analyze r.solution in
  check Alcotest.int "no seeds" 0 t.n_seeds;
  check Alcotest.int "no findings" 0 (List.length t.findings);
  check Alcotest.bool "no graph built" true (t.vfg = None)

(* Two pipeline clients share one handler-box allocation site inside a
   static factory (the examples/taint_demo.jir shape, reduced). Only the
   hot client's payload is a secret; context-insensitively the handler read
   back conflates across clients. *)
let taint_separable_src = {|
class Object { }
class Secret { }
class CleanData { }
class TaintSink { method consume/1 (x) { } }
class TaintWell { static method mkSecret/0 () { var s; s = new Secret; return s; } }
interface Deliverable { method deliver/1; }
class HandBox {
  field slot;
  method hput/1 (x) { this.slot = x; }
  method hget/0 () { var t; t = this.slot; return t; }
}
class PipeFactory {
  static method mkBox/0 () { var b; b = new HandBox; return b; }
}
class HotHandler extends Object implements Deliverable {
  method deliver/1 (x) { var snk; snk = new TaintSink; snk.consume(x); }
}
class ColdHandler extends Object implements Deliverable {
  method deliver/1 (x) { var snk; snk = new TaintSink; snk.consume(x); }
}
class HotClient {
  method run/0 () {
    var b, h, g, p;
    b = PipeFactory::mkBox();
    h = new HotHandler;
    b.hput(h);
    g = b.hget();
    p = TaintWell::mkSecret();
    g.deliver(p);
  }
}
class ColdClient {
  method run/0 () {
    var b, h, g, p;
    b = PipeFactory::mkBox();
    h = new ColdHandler;
    b.hput(h);
    g = b.hget();
    p = new CleanData;
    g.deliver(p);
  }
}
class Launcher {
  static method main/0 () {
    var a, l;
    a = new HotClient;
    a.run();
    l = new ColdClient;
    l.run();
  }
}
entry Launcher::main/0;
|}

let test_taint_context_precision () =
  let p = parse taint_separable_src in
  let coarse = Analysis.run_plain p insens in
  let fine = Analysis.run_plain p obj2 in
  (* insens conflates the handlers read back from the shared box allocation
     site, so the secret reaches both consume sites; 2objH keys the box by
     its client and pins the secret to the hot handler. *)
  check Alcotest.int "insens conflates" 2 (Taint.tainted_sink_count coarse.solution);
  check Alcotest.int "2objH separates" 1 (Taint.tainted_sink_count fine.solution);
  let t = Taint.analyze fine.solution in
  let f = List.hd t.findings in
  check Alcotest.string "the hot sink" "TaintSink::consume/1"
    (P.meth_full_name p f.sink);
  check Alcotest.string "at the hot handler's call site" "HotHandler::deliver/1"
    (P.meth_full_name p (P.invo_info p f.invo).invo_owner)

let test_taint_spec_parsing () =
  let text = {|
# a comment line
source *::getSecret/0
source-class Evil*   # trailing comment
sink *::emit/1
sink *::emit/2
sanitizer *::wash/1
|} in
  (match Taint.spec_of_string text with
  | Error e -> Alcotest.failf "unexpected parse error: %s" e
  | Ok spec ->
    check (Alcotest.list Alcotest.string) "sources" [ "*::getSecret/0" ] spec.sources;
    check (Alcotest.list Alcotest.string) "source classes" [ "Evil*" ] spec.source_classes;
    check (Alcotest.list Alcotest.string) "sinks" [ "*::emit/1"; "*::emit/2" ] spec.sinks;
    check (Alcotest.list Alcotest.string) "sanitizers" [ "*::wash/1" ] spec.sanitizers);
  (* round trip *)
  (match Taint.spec_of_string (Taint.spec_to_string Taint.default_spec) with
  | Ok spec -> check Alcotest.bool "round trip" true (spec = Taint.default_spec)
  | Error e -> Alcotest.failf "round trip failed: %s" e);
  (* errors carry the line number *)
  (match Taint.spec_of_string "source *::ok/0\nbogus *::x/1" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> check Alcotest.bool "line number" true (contains e "line 2"));
  match Taint.spec_of_string "source" with
  | Ok _ -> Alcotest.fail "expected an error for missing pattern"
  | Error _ -> ()

let test_taint_glob () =
  let m pat s = Taint.glob_match ~pat s in
  check Alcotest.bool "exact" true (m "Sink::consume/1" "Sink::consume/1");
  check Alcotest.bool "prefix star" true (m "*::consume/1" "TaintSink::consume/1");
  check Alcotest.bool "class prefix" true (m "Secret*" "SecretKey");
  check Alcotest.bool "star matches empty" true (m "Secret*" "Secret");
  check Alcotest.bool "anchored" false (m "Secret*" "MySecret");
  check Alcotest.bool "arity distinguishes" false (m "*::consume/1" "Sink::consume/2");
  check Alcotest.bool "multi star" true (m "a*b*c" "aXXbYYc");
  check Alcotest.bool "multi star needs all parts" false (m "a*b*c" "ac");
  check Alcotest.bool "lone star" true (m "*" "anything")

(* ---------- Datalog surface-language export ---------- *)

let test_dl_export_matches_native () =
  (* The exported .dl program's vpt/cg/reach must equal the native
     context-insensitive results (on exception-free programs — the export
     omits exception flow). *)
  let programs =
    [
      parse Ipa_testlib.boxes_src;
      parse poly_src;
      (let w = Ipa_synthetic.World.create ~seed:77 in
       Ipa_synthetic.Motifs.factory_boxes w ~n:4;
       Ipa_synthetic.Motifs.chains w ~n:3 ~depth:3;
       Ipa_synthetic.Motifs.mega_hub w ~items:10 ~users:4 ~chain:2;
       Ipa_synthetic.World.finish w);
    ]
  in
  List.iter
    (fun p ->
      let script = Ipa_clients.Dl_export.script p in
      let dl = Result.get_ok (Ipa_datalog.Dl.parse script) in
      let outputs = Result.get_ok (Ipa_datalog.Dl.run dl) in
      let dl_rel name =
        List.sort_uniq compare
          (List.map
             (fun tup ->
               String.concat " "
                 (List.map
                    (function Ipa_datalog.Dl.Sym s -> s | Int n -> string_of_int n)
                    tup))
             (List.assoc name outputs))
      in
      let r = Analysis.run_plain p insens in
      let s = r.solution in
      let native_vpt = ref [] in
      Array.iteri
        (fun v set ->
          Ipa_support.Int_set.iter
            (fun h ->
              native_vpt :=
                (P.var_full_name p v ^ " " ^ P.heap_full_name p h) :: !native_vpt)
            set)
        (Ipa_core.Solution.collapsed_var_pts s);
      check (Alcotest.list Alcotest.string) "vpt agrees"
        (List.sort_uniq compare !native_vpt)
        (dl_rel "vpt");
      let native_cg = ref [] in
      Hashtbl.iter
        (fun invo targets ->
          Ipa_support.Int_set.iter
            (fun meth ->
              native_cg :=
                ((P.invo_info p invo).invo_name ^ " " ^ P.meth_full_name p meth)
                :: !native_cg)
            targets)
        (Ipa_core.Solution.call_targets s);
      check (Alcotest.list Alcotest.string) "cg agrees"
        (List.sort_uniq compare !native_cg)
        (dl_rel "cg");
      let native_reach =
        List.sort_uniq compare
          (Ipa_support.Int_set.fold
             (fun m acc -> P.meth_full_name p m :: acc)
             (Ipa_core.Solution.reachable_meths s) [])
      in
      check (Alcotest.list Alcotest.string) "reach agrees" native_reach (dl_rel "reach"))
    programs

let () =
  Alcotest.run "clients"
    [
      ( "devirtualize",
        [ Alcotest.test_case "verdicts" `Quick test_devirt ] );
      ("cast_check", [ Alcotest.test_case "witnesses" `Quick test_casts ]);
      ( "exceptions",
        [
          Alcotest.test_case "uncaught and handlers" `Quick test_exception_report;
          Alcotest.test_case "dead handler" `Quick test_dead_handler_reported;
        ] );
      ("callgraph", [ Alcotest.test_case "dot export" `Quick test_callgraph_export ]);
      ( "compare",
        [
          Alcotest.test_case "boxes delta" `Quick test_compare;
          Alcotest.test_case "poly and reach" `Quick test_compare_poly_and_reach;
        ] );
      ("diagnostics", [ Alcotest.test_case "hotspots" `Quick test_diagnostics ]);
      ("printers", [ Alcotest.test_case "smoke" `Quick test_printers_smoke ]);
      ( "value flow",
        [ Alcotest.test_case "boxes graph" `Quick test_value_flow_boxes ] );
      ( "taint",
        [
          Alcotest.test_case "direct flow" `Quick test_taint_direct;
          Alcotest.test_case "heap flow" `Quick test_taint_through_heap;
          Alcotest.test_case "sanitizer" `Quick test_taint_sanitizer;
          Alcotest.test_case "no-source fast path" `Quick test_taint_no_source_fast_path;
          Alcotest.test_case "context precision" `Quick test_taint_context_precision;
          Alcotest.test_case "spec parsing" `Quick test_taint_spec_parsing;
          Alcotest.test_case "glob" `Quick test_taint_glob;
        ] );
      ( "dl export",
        [ Alcotest.test_case "matches native insens" `Quick test_dl_export_matches_native ] );
    ]
