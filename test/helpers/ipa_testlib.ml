(** Shared test utilities: a seeded random-program generator for property
    tests and canonicalizers for comparing analysis results across engines
    and runs (context ids are interning-order dependent, so tuples are
    rendered with contexts decoded to their element sequences). *)

module B = Ipa_ir.Builder
module Program = Ipa_ir.Program
module Splitmix = Ipa_support.Splitmix
module Int_set = Ipa_support.Int_set

(* ---------- random programs ---------- *)

(* Generates a well-formed program with [n_classes] classes, a small pool of
   method signatures (so overriding and dynamic dispatch arise naturally),
   random fields, and random straight-line bodies. Every program passes the
   Wf checker (Builder.finish enforces it). *)
let random_program ?(n_classes = 6) seed : Program.t =
  let rng = Splitmix.create seed in
  let b = B.create () in
  let object_cls = B.add_class b "Object" in
  let classes = Array.make n_classes object_cls in
  for i = 0 to n_classes - 1 do
    let super = if i = 0 || Splitmix.bool rng then object_cls else classes.(Splitmix.int rng i) in
    classes.(i) <- B.add_class b ~super (Printf.sprintf "C%d" i)
  done;
  (* Fields: a couple per class, names shared across classes sometimes (the
     front-end requires qualification then, but the builder works by id). *)
  let fields = ref [] in
  Array.iteri
    (fun i cls ->
      for f = 0 to Splitmix.int rng 3 - 1 do
        fields := B.add_field b ~owner:cls (Printf.sprintf "f%d_%d" i f) :: !fields
      done)
    classes;
  let fields = Array.of_list !fields in
  (* Method signature pool: m0/0, m1/1, m2/2. Track each method's initial
     variables (this + formals) for body generation. *)
  let sig_pool = [| ("m0", 0); ("m1", 1); ("m2", 2) |] in
  let methods = ref [] in
  let declare cls name ~static ~arity =
    let params = List.init arity (Printf.sprintf "p%d") in
    let m = B.add_method b ~owner:cls ~name ~static ~params () in
    let initial =
      (if static then [] else [ B.this b m ]) @ List.init arity (B.formal b m)
    in
    methods := (m, initial) :: !methods;
    m
  in
  Array.iter
    (fun cls ->
      Array.iter
        (fun (name, arity) ->
          if Splitmix.chance rng 0.55 then ignore (declare cls name ~static:false ~arity))
        sig_pool)
    classes;
  let main_cls = B.add_class b ~super:object_cls "Main" in
  let main = declare main_cls "main" ~static:true ~arity:0 in
  B.add_entry b main;
  let statics = ref [ (main, 0) ] in
  for i = 0 to Splitmix.int rng 3 do
    statics := (declare main_cls (Printf.sprintf "s%d" i) ~static:true ~arity:1, 1) :: !statics
  done;
  let statics = Array.of_list !statics in
  (* Bodies: random straight-line code over the method's variables. *)
  let fill_body (m, initial) =
    let vars = ref initial in
    for v = 0 to 2 + Splitmix.int rng 4 do
      vars := B.add_var b m (Printf.sprintf "v%d" v) :: !vars
    done;
    let all_vars = Array.of_list !vars in
    let var () = Splitmix.choose rng all_vars in
    let n_instr = 3 + Splitmix.int rng 8 in
    for _ = 1 to n_instr do
      match Splitmix.int rng 9 with
      | 0 | 1 -> ignore (B.alloc b m ~target:(var ()) ~cls:(Splitmix.choose rng classes))
      | 2 -> B.move b m ~target:(var ()) ~source:(var ())
      | 3 -> B.cast b m ~target:(var ()) ~source:(var ()) ~cls:(Splitmix.choose rng classes)
      | 4 when Array.length fields > 0 ->
        B.load b m ~target:(var ()) ~base:(var ()) ~field:(Splitmix.choose rng fields)
      | 5 when Array.length fields > 0 ->
        B.store b m ~base:(var ()) ~field:(Splitmix.choose rng fields) ~source:(var ())
      | 6 ->
        let name, arity = Splitmix.choose rng sig_pool in
        let actuals = List.init arity (fun _ -> var ()) in
        let recv = if Splitmix.bool rng then Some (var ()) else None in
        ignore (B.vcall b m ~base:(var ()) ~name ~actuals ?recv ())
      | 7 ->
        let callee, arity = Splitmix.choose rng statics in
        if callee <> m then begin
          let actuals = List.init arity (fun _ -> var ()) in
          ignore (B.scall b m ~callee ~actuals ~recv:(var ()) ())
        end
      | _ ->
        if Splitmix.bool rng then B.return_ b m (var ()) else B.throw b m (var ())
    done;
    (* Occasionally guard the method with catch clauses. *)
    for _ = 1 to Splitmix.int rng 3 - 1 do
      B.add_catch b m ~cls:(Splitmix.choose rng classes) ~var:(var ())
    done
  in
  List.iter fill_body !methods;
  B.finish b

(* ---------- canonical result rendering ---------- *)

(* Tuples are rendered by entity *names*, not ids, so results compare
   equal across different interning orders (reparsed programs, the Datalog
   backend's own context table, ...). *)
let ctx_str p tbl c =
  "["
  ^ String.concat ";"
      (Array.to_list (Array.map (Ipa_core.Ctx.Elem.to_string p) (Ipa_core.Ctx.elems tbl c)))
  ^ "]"

(* Sorted, context-decoded renderings of every computed relation of a native
   solution. Every canonicalized solution is also soundness-validated first,
   so nearly every solver run in the test suites doubles as a
   [Solution.self_check] run and fails loudly with the violated invariant. *)
let canon_native (s : Ipa_core.Solution.t) : string list =
  Ipa_core.Solution.self_check_exn s;
  let p = s.program in
  let acc = ref [] in
  let add fmt = Printf.ksprintf (fun str -> acc := str :: !acc) fmt in
  let c = ctx_str p s.ctxs in
  let v = Program.var_full_name p in
  let h = Program.heap_full_name p in
  let f = Program.field_full_name p in
  let m = Program.meth_full_name p in
  let i invo = (Program.invo_info p invo).invo_name in
  Ipa_core.Solution.iter_var_pts s (fun ~var ~ctx ~heap ~hctx ->
      add "vpt %s %s %s %s" (v var) (c ctx) (h heap) (c hctx));
  Ipa_core.Solution.iter_fld_pts s (fun ~base_heap ~base_hctx ~field ~heap ~hctx ->
      add "fpt %s %s %s %s %s" (h base_heap) (c base_hctx) (f field) (h heap) (c hctx));
  Ipa_core.Solution.iter_static_fld_pts s (fun ~field ~heap ~hctx ->
      add "sfpt %s %s %s" (f field) (h heap) (c hctx));
  Ipa_core.Solution.iter_cg s (fun ~invo ~caller ~meth ~callee ->
      add "cg %s %s %s %s" (i invo) (c caller) (m meth) (c callee));
  Ipa_core.Solution.iter_reachable s (fun ~meth ~ctx -> add "reach %s %s" (m meth) (c ctx));
  Ipa_core.Solution.iter_exc_pts s (fun ~meth ~ctx ~heap ~hctx ->
      add "exc %s %s %s %s" (m meth) (c ctx) (h heap) (c hctx));
  List.sort_uniq compare !acc

(* The same rendering for the Datalog reference backend. *)
let canon_datalog p (d : Ipa_core.Datalog_backend.t) : string list =
  let acc = ref [] in
  let add fmt = Printf.ksprintf (fun str -> acc := str :: !acc) fmt in
  let c = ctx_str p d.ctxs in
  let v = Program.var_full_name p in
  let h = Program.heap_full_name p in
  let f = Program.field_full_name p in
  let m = Program.meth_full_name p in
  let i invo = (Program.invo_info p invo).invo_name in
  Ipa_datalog.Relation.iter
    (fun t -> add "vpt %s %s %s %s" (v t.(0)) (c t.(1)) (h t.(2)) (c t.(3)))
    d.var_points_to;
  Ipa_datalog.Relation.iter
    (fun t -> add "fpt %s %s %s %s %s" (h t.(0)) (c t.(1)) (f t.(2)) (h t.(3)) (c t.(4)))
    d.fld_points_to;
  Ipa_datalog.Relation.iter
    (fun t -> add "sfpt %s %s %s" (f t.(0)) (h t.(1)) (c t.(2)))
    d.static_fld_points_to;
  Ipa_datalog.Relation.iter
    (fun t -> add "cg %s %s %s %s" (i t.(0)) (c t.(1)) (m t.(2)) (c t.(3)))
    d.call_graph;
  Ipa_datalog.Relation.iter (fun t -> add "reach %s %s" (m t.(0)) (c t.(1))) d.reachable;
  Ipa_datalog.Relation.iter
    (fun t -> add "exc %s %s %s %s" (m t.(0)) (c t.(1)) (h t.(2)) (c t.(3)))
    d.exc_points_to;
  List.sort_uniq compare !acc

(* ---------- common small programs ---------- *)

(* The quickstart two-boxes program: known exact results under insens vs
   object-sensitivity. *)
let boxes_src = {|
class Object { }
class A extends Object { }
class B extends Object { }
class Box {
  field val;
  method set/1 (x) { this.val = x; }
  method get/0 () { var t; t = this.val; return t; }
}
class Main {
  static method main/0 () {
    var b1, b2, oa, ob, ra, rb, rb2;
    b1 = new Box;
    b2 = new Box;
    oa = new A;
    ob = new B;
    b1.set(oa);
    b2.set(ob);
    ra = b1.get();
    rb = b2.get();
    rb2 = (B) rb;
  }
}
entry Main::main/0;
|}

let parse_exn src =
  match Ipa_frontend.Jir.parse_string src with
  | Ok p -> p
  | Error e -> failwith (Ipa_frontend.Jir.error_to_string e)

(* ---------- scratch directories ---------- *)

(* A fresh empty directory, removed (with its regular files) afterwards even
   if [f] raises. For tests of the on-disk snapshot cache. *)
let with_temp_dir f =
  let dir = Filename.temp_file "ipa_test" ".dir" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun file -> try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
           (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)
