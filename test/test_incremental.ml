(* Differential tests for compositional and incremental solving:
   - a cold compositional solve (summary extraction + replay) must be
     byte-identical to the monolithic solve, for an exact flavor and under
     context-sensitivity, at any extraction parallelism;
   - a warm re-solve chained across random monotone edits must be
     byte-identical to a cold solve of the final program (modulo the phase
     accounting: counters and the derivation count measure the edit);
   - the dirty set after an edit is exactly the edited component plus its
     transitive callers — siblings keep their summaries;
   - edit picking is deterministic in its seed (the CLI's --seed). *)

module B = Ipa_ir.Builder
module Program = Ipa_ir.Program
module Solution = Ipa_core.Solution
module Solver = Ipa_core.Solver
module Snapshot = Ipa_core.Snapshot
module Summary = Ipa_core.Summary
module Comp = Ipa_core.Compositional_solver
module Flavors = Ipa_core.Flavors
module Edits = Ipa_synthetic.Edits

let check = Alcotest.check

let qtest ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mem_store () =
  let tbl = Hashtbl.create 32 in
  {
    Comp.find_bytes = (fun key -> Hashtbl.find_opt tbl key);
    put_bytes = (fun key bytes -> if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key bytes);
  }

(* Snapshot bytes with the propagation counters zeroed: what "identical
   solution" means when one side carries compositional counters the other
   cannot. The warm variant additionally zeroes the derivation count —
   a seeded solve re-asserts the baseline without counting it. *)
let cold_bytes p (s : Solution.t) =
  Snapshot.encode
    {
      Snapshot.key = "incr-test";
      program_digest = Snapshot.digest_program p;
      label = "incr-test";
      seconds = 0.0;
      solution = { s with Solution.counters = Solution.zero_counters };
      metrics = None;
    }

let warm_bytes p (s : Solution.t) = cold_bytes p { s with Solution.derivations = 0 }

let config p flavor = Solver.plain p (Flavors.strategy p flavor)

let flavors =
  [ Flavors.Insensitive; Flavors.Type_sens { depth = 2; heap = 1 } ]

(* ---------- cold compositional == monolithic ---------- *)

let prop_compositional_identity seed =
  let p = Ipa_testlib.random_program seed in
  List.iter
    (fun flavor ->
      let name = Flavors.to_string flavor in
      let cfg = config p flavor in
      let mono = Solver.run p cfg in
      let store = mem_store () in
      let comp, report = Comp.solve ~store p cfg in
      if comp.Solution.derivations <> mono.Solution.derivations then
        QCheck2.Test.fail_reportf "%s: derivations %d (compositional) vs %d (monolithic)"
          name comp.Solution.derivations mono.Solution.derivations;
      if not (String.equal (cold_bytes p comp) (cold_bytes p mono)) then
        QCheck2.Test.fail_reportf "%s: compositional solve changed the snapshot bytes" name;
      if report.Comp.sccs_summarized <> report.Comp.n_sccs then
        QCheck2.Test.fail_reportf "%s: %d of %d components summarized" name
          report.Comp.sccs_summarized report.Comp.n_sccs;
      (* Second solve over the same store: every summary must hit. *)
      let again, report2 = Comp.solve ~store p cfg in
      if report2.Comp.summaries_reused <> report2.Comp.n_sccs then
        QCheck2.Test.fail_reportf "%s: %d of %d summaries reused on the second solve" name
          report2.Comp.summaries_reused report2.Comp.n_sccs;
      if not (String.equal (cold_bytes p again) (cold_bytes p mono)) then
        QCheck2.Test.fail_reportf "%s: store round-trip changed the snapshot bytes" name)
    flavors;
  true

let test_compositional_identity =
  qtest "compositional == monolithic (insens, 2typeH)"
    (QCheck2.Gen.int_range 100 299)
    prop_compositional_identity

(* Extraction parallelism must not change anything: store probes stay
   sequential, so even the reuse accounting is identical. *)
let prop_jobs_independent seed =
  let p = Ipa_testlib.random_program seed in
  let cfg = config p Flavors.Insensitive in
  let s1, r1 = Comp.solve ~store:(mem_store ()) ~jobs:1 p cfg in
  let s4, r4 = Comp.solve ~store:(mem_store ()) ~jobs:4 p cfg in
  if not (String.equal (cold_bytes p s1) (cold_bytes p s4)) then
    QCheck2.Test.fail_reportf "jobs 4 changed the snapshot bytes";
  if r1 <> r4 then QCheck2.Test.fail_reportf "jobs 4 changed the report";
  true

let test_jobs_independent =
  qtest ~count:15 "extraction jobs 1 == jobs 4"
    (QCheck2.Gen.int_range 300 399)
    prop_jobs_independent

(* ---------- warm chain over monotone edits == cold ---------- *)

let prop_warm_chain (seed, n_edits) =
  let p0 = Ipa_testlib.random_program seed in
  let edits = Edits.pick ~kinds:Edits.monotone_kinds ~seed ~n:n_edits p0 in
  List.iter
    (fun flavor ->
      let name = Flavors.to_string flavor in
      let store = mem_store () in
      let s0, _ = Comp.solve ~store p0 (config p0 flavor) in
      let pf, sf =
        List.fold_left
          (fun (p, s) e ->
            let p' = Edits.apply p e in
            let s', report =
              Comp.solve_incremental ~store ~base_program:p ~base_solution:s p'
                (config p' flavor)
            in
            (match report.Comp.fallback with
            | None -> ()
            | Some reason ->
              QCheck2.Test.fail_reportf "%s: %s fell back cold: %s" name
                (Edits.describe p e) reason);
            (p', s'))
          (p0, s0) edits
      in
      let cold = Solver.run pf (config pf flavor) in
      if not (String.equal (warm_bytes pf sf) (warm_bytes pf cold)) then
        QCheck2.Test.fail_reportf
          "%s: warm solve after %d edit(s) differs from the cold solve" name
          (List.length edits))
    flavors;
  true

let test_warm_chain =
  qtest ~count:20 "warm re-solve chain == cold (insens, 2typeH)"
    QCheck2.Gen.(pair (int_range 400 599) (int_range 1 3))
    prop_warm_chain

(* ---------- dirty-set minimality ---------- *)

(* main -> a -> b -> c plus main -> d: editing c must dirty exactly the
   call chain above it ({c, b, a, main}); the sibling d keeps its summary
   and stays out of the re-solved set. *)
let test_dirty_minimality () =
  let b = B.create () in
  let obj = B.add_class b "Object" in
  let cls = B.add_class b ~super:obj "K" in
  let mk name = B.add_method b ~owner:cls ~name ~static:true ~params:[] () in
  let main = mk "main" in
  let am = mk "a" in
  let bm = mk "b" in
  let cm = mk "c" in
  let dm = mk "d" in
  ignore (B.scall b main ~callee:am ~actuals:[] ());
  ignore (B.scall b main ~callee:dm ~actuals:[] ());
  ignore (B.scall b am ~callee:bm ~actuals:[] ());
  ignore (B.scall b bm ~callee:cm ~actuals:[] ());
  let cv = B.add_var b cm "x" in
  ignore (B.alloc b cm ~target:cv ~cls);
  B.return_ b cm cv;
  let dv = B.add_var b dm "x" in
  ignore (B.alloc b dm ~target:dv ~cls);
  B.add_entry b main;
  let base = B.finish b in
  let edited = Edits.apply base { Edits.kind = Edits.Add_alloc; meth = cm; salt = 0 } in
  let store = mem_store () in
  let s0, cold_report = Comp.solve ~store base (config base Flavors.Insensitive) in
  check Alcotest.int "five components" 5 cold_report.Comp.n_sccs;
  let warm, report =
    Comp.solve_incremental ~store ~base_program:base ~base_solution:s0 edited
      (config edited Flavors.Insensitive)
  in
  check Alcotest.bool "incremental" true report.Comp.incremental;
  let cond = Summary.condense edited in
  let scc_of m = cond.Summary.scc_of_meth.(m) in
  let expected = List.sort compare [ scc_of main; scc_of am; scc_of bm; scc_of cm ] in
  check (Alcotest.list Alcotest.int) "dirty = edited chain" expected report.Comp.dirty_sccs;
  check Alcotest.bool "sibling d stays clean" false
    (List.mem (scc_of dm) report.Comp.dirty_sccs);
  check Alcotest.int "resolved = dirty closure" 4 report.Comp.sccs_resolved;
  (* Every unchanged component's summary hits the store: only c changed. *)
  check Alcotest.int "summaries reused" 4 report.Comp.summaries_reused;
  let cold = Solver.run edited (config edited Flavors.Insensitive) in
  check Alcotest.bool "warm == cold" true
    (String.equal (warm_bytes edited warm) (warm_bytes edited cold))

(* ---------- seeded edit picking ---------- *)

let test_pick_deterministic () =
  let p = Ipa_testlib.random_program 7 in
  let d es = List.map (Edits.describe p) es in
  let a = d (Edits.pick ~seed:42 ~n:4 p) in
  let b = d (Edits.pick ~seed:42 ~n:4 p) in
  check (Alcotest.list Alcotest.string) "same seed, same edits" a b;
  (* Pinned: the CLI's --seed must keep meaning the same edit script. *)
  let monotone = d (Edits.pick ~kinds:Edits.monotone_kinds ~seed:42 ~n:2 p) in
  check (Alcotest.list Alcotest.string) "pinned seed-42 picks"
    [ "add-call C2::m1/1"; "add-call C4::m2/2" ]
    monotone;
  List.iter
    (fun e ->
      match e.Edits.kind with
      | Edits.Add_alloc | Edits.Add_call -> ()
      | Edits.Rewrite_body -> Alcotest.fail "monotone pick returned rewrite-body")
    (Edits.pick ~kinds:Edits.monotone_kinds ~seed:42 ~n:8 p)

let () =
  Alcotest.run "incremental"
    [
      ( "compositional",
        [ test_compositional_identity; test_jobs_independent ] );
      ("warm", [ test_warm_chain ]);
      ( "dirty",
        [ Alcotest.test_case "minimal dirty set" `Quick test_dirty_minimality ] );
      ( "edits",
        [ Alcotest.test_case "seeded picking pinned" `Quick test_pick_deterministic ] );
    ]
