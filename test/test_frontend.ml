(* Tests for the .jir front-end: lexer, parser, resolver, and round-trips. *)

module Lexer = Ipa_frontend.Lexer
module Parser = Ipa_frontend.Parser
module Jir = Ipa_frontend.Jir
module P = Ipa_ir.Program

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------- lexer ---------- *)

let tokens src = Array.to_list (Array.map fst (Lexer.tokenize src))

let test_lexer_tokens () =
  check Alcotest.int "count" 9 (List.length (tokens "class Foo { field x ; } entry"));
  (match tokens "a = b.c(d);" with
  | [ Id "a"; Eq; Id "b"; Dot; Id "c"; Lparen; Id "d"; Rparen; Semi; Eof ] -> ()
  | _ -> Alcotest.fail "call tokens");
  (match tokens "A::f / 12" with
  | [ Id "A"; Coloncolon; Id "f"; Slash; Int 12; Eof ] -> ()
  | _ -> Alcotest.fail "coloncolon tokens")

let test_lexer_keywords () =
  match tokens "class interface extends implements field method static var new return entry" with
  | [
   Lexer.Kw_class;
   Kw_interface;
   Kw_extends;
   Kw_implements;
   Kw_field;
   Kw_method;
   Kw_static;
   Kw_var;
   Kw_new;
   Kw_return;
   Kw_entry;
   Eof;
  ] -> ()
  | _ -> Alcotest.fail "keyword tokens"

let test_lexer_comments () =
  check Alcotest.int "line comment" 3 (List.length (tokens "a // zap zap\n b"));
  check Alcotest.int "block comment" 3 (List.length (tokens "a /* zap\nzap */ b"));
  check Alcotest.int "comment in comment" 2 (List.length (tokens "/* a // b */ c"))

let test_lexer_positions () =
  let toks = Lexer.tokenize "ab\n  cd" in
  let _, (p1 : Ipa_frontend.Ast.pos) = toks.(0) in
  let _, (p2 : Ipa_frontend.Ast.pos) = toks.(1) in
  check Alcotest.int "line 1" 1 p1.line;
  check Alcotest.int "col 1" 1 p1.col;
  check Alcotest.int "line 2" 2 p2.line;
  check Alcotest.int "col 3" 3 p2.col

let expect_lex_error src (line, col) fragment =
  match Lexer.tokenize src with
  | _ -> Alcotest.failf "expected lex error on %S" src
  | exception Lexer.Lex_error (pos, msg) ->
    if not (contains msg fragment) then Alcotest.failf "message %S lacks %S" msg fragment;
    check
      Alcotest.(pair int int)
      (Printf.sprintf "position of error in %S" src)
      (line, col) (pos.line, pos.col)

let test_lexer_errors () =
  expect_lex_error "a ? b" (1, 3) "unexpected character";
  expect_lex_error "a : b" (1, 3) "expected '::'";
  (* Unterminated comments are reported at the opening delimiter. *)
  expect_lex_error "/* never closed" (1, 1) "unterminated block comment";
  expect_lex_error "ab\n  /* zap" (2, 3) "unterminated block comment";
  expect_lex_error "class A {\n  field ^;\n}" (2, 9) "unexpected character"

(* ---------- parser ---------- *)

let parse_ok src =
  match Jir.parse_string src with
  | Ok p -> p
  | Error e -> Alcotest.failf "unexpected error: %s" (Jir.error_to_string e)

let expect_error src fragment =
  match Jir.parse_string src with
  | Ok _ -> Alcotest.failf "expected parse/resolve error (%s)" fragment
  | Error e ->
    if not (contains e.msg fragment) then
      Alcotest.failf "error %S lacks %S" (Jir.error_to_string e) fragment

let expect_error_at src (line, col) fragment =
  match Jir.parse_string src with
  | Ok _ -> Alcotest.failf "expected parse/resolve error (%s)" fragment
  | Error e ->
    if not (contains e.msg fragment) then
      Alcotest.failf "error %S lacks %S" (Jir.error_to_string e) fragment;
    check
      Alcotest.(pair int int)
      (Printf.sprintf "position of %S" fragment)
      (line, col) (e.line, e.col)

let wrap body = Printf.sprintf {|
class Object { }
class A extends Object {
  field f;
  static field g;
  method id/1 (x) { return x; }
  static method mk/0 () { var o; o = new A; return o; }
}
class Main {
  static method main/0 () {
%s
  }
}
entry Main::main/0;
|} body

let find_method p name =
  let rec go m =
    if m >= P.n_meths p then Alcotest.failf "no method %s" name
    else if (P.meth_info p m).meth_name = name then m
    else go (m + 1)
  in
  go 0

let test_parser_statements () =
  let p =
    parse_ok
      (wrap
         {|
    var a, b, c;
    a = new A;
    b = a;
    c = (A) b;
    b = a.A::f;
    b = a.f;
    a.A::f = b;
    a.f = b;
    b = A::g;
    A::g = b;
    c = a.id(b);
    a.id(b);
    c = A::mk();
    A::mk();
    return;
  |})
  in
  let main_m = find_method p "main" in
  (* 13 statements become instructions ([var] and bare [return] do not). *)
  check Alcotest.int "instruction count" 13 (Array.length (P.meth_info p main_m).body)

let test_parser_errors () =
  expect_error (wrap "var a\n a = new A;") "expected ';'";
  expect_error (wrap "var a; a = ;") "statement right-hand side";
  expect_error (wrap "var a; a.;") "expected an identifier";
  expect_error "class Object { junk }" "expected a member";
  expect_error "class Object { method m/2 (x) { } }" "declares 1 parameters";
  expect_error "interface I { method m/0 () { } }" "declares a method body";
  expect_error "class Object { static method m/0; }" "abstract method m cannot be static"

(* Exact error positions, one per error-site class. Lexer errors point at
   the offending character (or the opening delimiter of an unterminated
   comment); parser errors point at the token where the inconsistency was
   detected. *)
let test_parser_error_positions () =
  (* Unterminated comment, through the Jir facade. *)
  expect_error_at "class Object { }\n/* oops" (2, 1) "unterminated block comment";
  (* Bad token inside a class body. *)
  expect_error_at "class Object { ? }" (1, 16) "unexpected character";
  (* Arity mismatch: detected at the token after the parameter list. *)
  expect_error_at "class Object { method m/2 (x) { } }" (1, 31) "declares 1 parameters";
  (* Abstract-static: detected at the token after the semicolon. *)
  expect_error_at "class Object { static method m/0; }" (1, 35) "cannot be static"

(* ---------- resolver ---------- *)

let test_resolver_forward_refs () =
  let p =
    parse_ok
      {|
class Main {
  static method main/0 () {
    var b, r;
    b = new B;
    r = b.go();
    r = Util::help(b);
  }
}
class B extends A {
  method go/0 () { return this; }
}
class Util {
  static method help/1 (x) { return x; }
}
class A extends Object { }
class Object { }
entry Main::main/0;
|}
  in
  check Alcotest.int "classes" 5 (P.n_classes p);
  let a = Option.get (P.find_class p "A") in
  let b = Option.get (P.find_class p "B") in
  check Alcotest.bool "subtype across forward refs" true (P.subtype p ~sub:b ~super:a)

let test_resolver_errors () =
  expect_error "class A extends Nope { }" "unknown class or interface Nope";
  expect_error "class A extends B { }\nclass B extends A { }" "cyclic class hierarchy";
  expect_error "class A { }\nclass A { }" "duplicate class A";
  expect_error (wrap "x = new A;") "unknown variable x";
  expect_error (wrap "var a; a = new Zip;") "unknown class Zip";
  expect_error (wrap "var a; a = a.nope;") "unknown field nope";
  expect_error (wrap "var a; a = a.A::nope;") "declares no field nope";
  expect_error (wrap "var a; a = A::huh();") "unknown method A::huh/0";
  expect_error (wrap "var a, a;") "duplicate variable a";
  expect_error "entry A::main/0;" "unknown class A";
  expect_error "class A extends Object { }\nclass Object { }\nentry A::main/0;"
    "unknown entry A::main/0"

let test_resolver_ambiguous_field () =
  expect_error
    {|
class Object { }
class A extends Object { field f; }
class B extends Object { field f; }
class Main {
  static method main/0 () { var a, x; a = new A; x = a.f; }
}
entry Main::main/0;
|}
    "ambiguous"

let test_resolver_inherited_static_call () =
  let p =
    parse_ok
      {|
class Object { }
class Base extends Object {
  static method mk/0 () { var o; o = new Base; return o; }
}
class Derived extends Base { }
class Main {
  static method main/0 () { var o; o = Derived::mk(); }
}
entry Main::main/0;
|}
  in
  check Alcotest.int "invos" 1 (P.n_invos p)

let test_resolver_entry_inherited () =
  let p =
    parse_ok
      {|
class Object { }
class Base extends Object {
  static method main/0 () { var o; o = new Base; }
}
class App extends Base { }
entry App::main/0;
|}
  in
  check Alcotest.int "one entry" 1 (List.length (P.entries p))

let test_parse_file_missing () =
  match Jir.parse_file "/nonexistent/path.jir" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
    check Alcotest.bool "io error reported" true (String.length e.msg > 0);
    (* I/O failures carry the path and a 0:0 position, and the rendered
       error leads with the path — not a bare "0:0: No such file". *)
    check (Alcotest.option Alcotest.string) "file" (Some "/nonexistent/path.jir") e.file;
    check Alcotest.int "line" 0 e.line;
    check Alcotest.int "col" 0 e.col;
    check Alcotest.bool "rendering names the file" true
      (contains (Jir.error_to_string e) "/nonexistent/path.jir")

let test_parse_file_positions () =
  (* Errors from parse_file carry the file name alongside the position. *)
  Ipa_testlib.with_temp_dir (fun dir ->
      let path = Filename.concat dir "broken.jir" in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "class Object {\n  junk\n}\n");
      match Jir.parse_file path with
      | Ok _ -> Alcotest.fail "expected parse error"
      | Error e ->
        check (Alcotest.option Alcotest.string) "file" (Some path) e.file;
        check Alcotest.(pair int int) "position" (2, 3) (e.line, e.col);
        check Alcotest.bool "rendering is file:line:col" true
          (contains (Jir.error_to_string e) (path ^ ":2:3:")))

(* ---------- round-trips ---------- *)

let test_roundtrip_benchmarks () =
  List.iter
    (fun (spec : Ipa_synthetic.Dacapo.spec) ->
      let p = Ipa_synthetic.Dacapo.build ~scale:0.02 spec in
      let printed = Ipa_ir.Pretty.program p in
      match Jir.parse_string printed with
      | Error e -> Alcotest.failf "%s: reparse failed: %s" spec.name (Jir.error_to_string e)
      | Ok p2 ->
        check Alcotest.string (spec.name ^ " stable") printed (Ipa_ir.Pretty.program p2);
        check Alcotest.int (spec.name ^ " classes") (P.n_classes p) (P.n_classes p2);
        check Alcotest.int (spec.name ^ " meths") (P.n_meths p) (P.n_meths p2);
        check Alcotest.int (spec.name ^ " heaps") (P.n_heaps p) (P.n_heaps p2))
    Ipa_synthetic.Dacapo.all

let test_roundtrip_preserves_analysis () =
  (* Parsing the printed program must not change analysis results. *)
  for seed = 20 to 24 do
    let p = Ipa_testlib.random_program seed in
    let p2 = Ipa_testlib.parse_exn (Ipa_ir.Pretty.program p) in
    List.iter
      (fun flavor ->
        let r1 = Ipa_core.Analysis.run_plain p flavor in
        let r2 = Ipa_core.Analysis.run_plain p2 flavor in
        check
          (Alcotest.list Alcotest.string)
          (Printf.sprintf "seed %d results" seed)
          (Ipa_testlib.canon_native r1.solution)
          (Ipa_testlib.canon_native r2.solution))
      [ Ipa_core.Flavors.Insensitive; Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 } ]
  done

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "keywords" `Quick test_lexer_keywords;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "statements" `Quick test_parser_statements;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "error positions" `Quick test_parser_error_positions;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "forward refs" `Quick test_resolver_forward_refs;
          Alcotest.test_case "errors" `Quick test_resolver_errors;
          Alcotest.test_case "ambiguous field" `Quick test_resolver_ambiguous_field;
          Alcotest.test_case "inherited static call" `Quick test_resolver_inherited_static_call;
          Alcotest.test_case "inherited entry" `Quick test_resolver_entry_inherited;
          Alcotest.test_case "missing file" `Quick test_parse_file_missing;
          Alcotest.test_case "file positions" `Quick test_parse_file_positions;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "benchmarks" `Quick test_roundtrip_benchmarks;
          Alcotest.test_case "analysis preserved" `Quick test_roundtrip_preserves_analysis;
        ] );
    ]
