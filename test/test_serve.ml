(* Fault-injection battery for the production query server:
   - scripted concurrent multi-client socket sessions with interleaved
     [load key] hot-swaps, every answer checked byte-identical to a
     sequential simulation over private engines (per-session view
     isolation);
   - jobs=4 vs jobs=1 determinism of every counter the metrics endpoint
     reports (latency estimates excluded);
   - half-closed and abruptly-dropped connections, oversized and
     malformed lines mid-stream (exact error-message assertions, session
     stays usable);
   - budget-forced cache eviction during live queries (answers stay
     byte-identical, evictions observed, budget re-enforced once pins
     release);
   - idle timeouts and per-session query limits (exact messages, control
     commands still accepted on an exhausted session);
   - socket-path lifecycle: stale files reclaimed, live servers and
     non-socket paths refused. *)

module Analysis = Ipa_core.Analysis
module Flavors = Ipa_core.Flavors
module Snapshot = Ipa_core.Snapshot
module Query = Ipa_query.Query
module Engine = Ipa_query.Engine
module Server = Ipa_query.Server
module Cache = Ipa_harness.Cache
module T = Ipa_testlib

let check = Alcotest.check

let solve flavor =
  let p = T.parse_exn T.boxes_src in
  (p, (Analysis.run_plain p flavor).solution)

let insens = Flavors.Insensitive
let twoobj = Flavors.Object_sens { depth = 2; heap = 1 }

(* ---------- fixtures: two snapshots under fixed cache keys ---------- *)

let key_a = String.make 32 'a' (* insens *)
let key_b = String.make 32 'b' (* 2objH *)

(* Publishes both solutions as .snap files the cache serves by key;
   returns their byte sizes (for budget arithmetic). *)
let publish_snapshots dir p s_insens s_2obj =
  let write key label solution =
    let bytes =
      Snapshot.encode
        {
          Snapshot.key;
          program_digest = Snapshot.digest_program p;
          label;
          seconds = 0.0;
          solution;
          metrics = None;
        }
    in
    Out_channel.with_open_bin
      (Filename.concat dir (key ^ ".snap"))
      (fun oc -> Out_channel.output_string oc bytes);
    String.length bytes
  in
  (write key_a "insens" s_insens, write key_b "2objH" s_2obj)

(* The expected byte-exact transcript of one session, replayed over
   private engines — the server's per-session views must behave exactly
   like this sequential model no matter how many sessions interleave. *)
let simulate ~engines ~labels script =
  let keys = [| key_a; key_b |] in
  let cur = ref 0 in
  List.map
    (fun line ->
      match Query.tokens line with
      | Ok [ "load"; "key"; k ] ->
        Array.iteri (fun j key -> if key = k then cur := j) keys;
        Printf.sprintf "load key %s: ok (%s)" k labels.(!cur)
      | _ -> (
        match Query.parse line with
        | Error e -> Engine.render_error ~json:false ~q:line e
        | Ok q -> Engine.render_text q (Engine.eval engines.(!cur) q)))
    script

let base_queries =
  [|
    "pts Main::main/0$ra";
    "alias Main::main/0$ra Main::main/0$rb";
    "callers Box::get/0";
    "stats";
  |]

(* Client [c]'s deterministic script: queries with a [load key] hot-swap
   every 5th line, staggered per client so swaps interleave across
   sessions. *)
let swap_script c n =
  List.concat
    (List.init n (fun i ->
         let q = base_queries.((i + c) mod Array.length base_queries) in
         if i mod 5 = 4 then
           [ Printf.sprintf "load key %s" (if ((i / 5) + c) mod 2 = 0 then key_b else key_a); q ]
         else [ q ]))

(* ---------- socket scaffolding ---------- *)

let connect path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect sock (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
      Unix.sleepf 0.02;
      go (tries - 1)
  in
  go 250;
  sock

(* Start a socket server in its own domain, run [k], then stop, drain and
   join before returning — so counters read after [with_server] are final
   (no session still active). *)
let with_server ?cache ?limits ?log ?(jobs = 1) ~dir (p, label, sol) k =
  let path = Filename.concat dir "ipa.sock" in
  let run pool =
    let server =
      Server.create ?cache ?pool ?limits ?log ~json:false ~timings:false ~program:p ~label sol
    in
    let domain = Domain.spawn (fun () -> Server.serve_socket server ~path) in
    (* The socket file appears only once the server is accepting (bind on a
       temp name, rename after listen) — wait for it so [k] never races the
       startup. A file-existence poll, not a connect: a probe connection
       would inflate the [sessions] counter the tests assert exactly. *)
    let rec wait_ready tries =
      if (not (Sys.file_exists path)) && tries > 0 then begin
        Unix.sleepf 0.02;
        wait_ready (tries - 1)
      end
    in
    wait_ready 250;
    let joined = ref None in
    let res =
      Fun.protect
        ~finally:(fun () ->
          Server.request_stop server;
          joined := Some (Domain.join domain))
        (fun () -> k server path)
    in
    (match !joined with
    | Some (Error e) -> Alcotest.failf "serve_socket: %s" e
    | _ -> ());
    (server, res)
  in
  if jobs <= 1 then run None
  else Ipa_support.Domain_pool.with_pool ~jobs (fun pool -> run (Some pool))

(* One lockstep client: write a line, read the answer, compare against
   the expected transcript. Returns the first mismatch, if any. *)
let lockstep_client path script expected =
  let sock = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr sock and oc = Unix.out_channel_of_descr sock in
  let err = ref None in
  (try
     List.iter2
       (fun line want ->
         if !err = None then begin
           output_string oc (line ^ "\n");
           flush oc;
           let got = input_line ic in
           if got <> want then
             err := Some (Printf.sprintf "sent %S:\n  want %S\n  got  %S" line want got)
         end)
       script expected;
     output_string oc "quit\n";
     flush oc
   with End_of_file | Sys_error _ -> err := Some "server closed the connection early");
  !err

let join_clients domains =
  List.iter
    (fun d -> match Domain.join d with None -> () | Some e -> Alcotest.fail e)
    domains

(* ---------- concurrent sessions with interleaved hot-swaps ---------- *)

(* [n_clients] concurrent sessions, each hot-swapping between the two
   snapshots on its own schedule. Per-session views mean every client's
   transcript must be byte-identical to its private sequential
   simulation; a swap leaking across sessions, a batch answered out of
   order, or an eviction corrupting a pinned snapshot all surface as a
   byte diff. *)
let run_swap_workload ~jobs ~n_clients ~mem_budget () =
  let p, s1 = solve insens in
  let _, s2 = solve twoobj in
  T.with_temp_dir (fun dir ->
      let size_a, size_b = publish_snapshots dir p s1 s2 in
      let budget =
        match mem_budget with
        | `Unbounded -> None
        | `Both -> Some (2 * (size_a + size_b))
        | `One -> Some (max size_a size_b + (min size_a size_b / 2))
      in
      let cache = Cache.create ~dir ?mem_budget:budget () in
      let engines = [| Engine.create s1; Engine.create s2 |] in
      let labels = [| "insens"; "2objH" |] in
      let scripts = List.init n_clients (fun c -> swap_script c 25) in
      let expected = List.map (simulate ~engines ~labels) scripts in
      let server, () =
        with_server ~cache ~jobs ~dir (p, "insens", s1) (fun _server path ->
            join_clients
              (List.map2
                 (fun script want -> Domain.spawn (fun () -> lockstep_client path script want))
                 scripts expected))
      in
      (server, cache, List.length (List.concat scripts)))

let test_concurrent_hot_swaps () =
  let server, _, total = run_swap_workload ~jobs:4 ~n_clients:4 ~mem_budget:`Unbounded () in
  check Alcotest.int "every line answered exactly once" total (Server.served server);
  check Alcotest.int "no errors" 0 (Server.errors server);
  check Alcotest.int "four sessions" 4 (List.assoc "sessions" (Server.metrics server));
  check Alcotest.int "all sessions drained" 0
    (List.assoc "active_sessions" (Server.metrics server))

(* Budget-forced eviction during live queries: the cache can hold only
   one snapshot, so concurrent sessions serving different snapshots force
   constant evict/reload churn — answers must not change, and the budget
   must hold again once the sessions' pins are released. *)
let test_eviction_under_live_queries () =
  let server, cache, _ = run_swap_workload ~jobs:4 ~n_clients:3 ~mem_budget:`One () in
  let stats = Cache.stats cache in
  check Alcotest.int "no errors under eviction churn" 0 (Server.errors server);
  check Alcotest.bool "budget forced evictions" true (stats.evictions > 0);
  check Alcotest.bool "evicted snapshots re-served from disk" true (stats.disk_hits > 2);
  (match Cache.mem_budget cache with
  | None -> Alcotest.fail "cache lost its budget"
  | Some b ->
    check Alcotest.bool "resident bytes within budget after pins released" true
      (stats.resident_bytes <= b));
  check Alcotest.int "all sessions drained" 0
    (List.assoc "active_sessions" (Server.metrics server))

(* Every counter the metrics endpoint reports must be identical at jobs=1
   and jobs=4 for the same workload — concurrency changes wall-clock
   only. Latency estimates are the documented exception. *)
let test_metrics_jobs_determinism () =
  let counters_of jobs =
    let server, _, _ = run_swap_workload ~jobs ~n_clients:4 ~mem_budget:`Both () in
    List.filter (fun (k, _) -> k <> "p50_us" && k <> "p99_us") (Server.metrics server)
  in
  let seq = counters_of 1 in
  let par = counters_of 4 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "metrics counters identical at jobs=1 and jobs=4" seq par

(* ---------- connection faults ---------- *)

let test_half_closed_connection () =
  let p, s1 = solve insens in
  T.with_temp_dir (fun dir ->
      let script = [ "pts Main::main/0$ra"; "stats"; "callers Box::get/0" ] in
      let expected = simulate ~engines:[| Engine.create s1 |] ~labels:[| "insens" |] script in
      let server, () =
        with_server ~dir (p, "insens", s1) (fun _server path ->
            let sock = connect path in
            Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
            @@ fun () ->
            let oc = Unix.out_channel_of_descr sock in
            List.iter (fun l -> output_string oc (l ^ "\n")) script;
            flush oc;
            (* half-close: no more requests, but the read side stays open
               for the answers already in flight *)
            Unix.shutdown sock Unix.SHUTDOWN_SEND;
            let ic = Unix.in_channel_of_descr sock in
            List.iter
              (fun want -> check Alcotest.string "answer after half-close" want (input_line ic))
              expected;
            check Alcotest.bool "clean EOF after the last answer" true
              (match input_line ic with exception End_of_file -> true | _ -> false))
      in
      check Alcotest.int "all three answered" 3 (Server.served server);
      check Alcotest.int "no disconnects" 0 (List.assoc "disconnects" (Server.metrics server)))

let test_abrupt_drop_then_next_client () =
  let p, s1 = solve insens in
  T.with_temp_dir (fun dir ->
      let server, () =
        with_server ~dir (p, "insens", s1) (fun _server path ->
            (* client 1 vanishes mid-request without reading its answer *)
            let sock = connect path in
            let oc = Unix.out_channel_of_descr sock in
            output_string oc "pts Main::main/0$ra\nstats\n";
            flush oc;
            Unix.close sock;
            (* the server must shrug it off and serve the next client *)
            let sock2 = connect path in
            Fun.protect ~finally:(fun () -> try Unix.close sock2 with Unix.Unix_error _ -> ())
            @@ fun () ->
            let ic = Unix.in_channel_of_descr sock2
            and oc2 = Unix.out_channel_of_descr sock2 in
            output_string oc2 "stats\nquit\n";
            flush oc2;
            check Alcotest.bool "next client is served normally" true
              (String.starts_with ~prefix:"stats:" (input_line ic)))
      in
      check Alcotest.int "two sessions" 2 (List.assoc "sessions" (Server.metrics server));
      check Alcotest.int "all sessions drained" 0
        (List.assoc "active_sessions" (Server.metrics server)))

(* ---------- input faults: oversized and malformed lines ---------- *)

let test_oversized_line_mid_stream () =
  let p, s1 = solve insens in
  T.with_temp_dir (fun dir ->
      let limits = { Server.default_limits with max_line = 64 } in
      let expected_ok =
        List.hd (simulate ~engines:[| Engine.create s1 |] ~labels:[| "insens" |]
                   [ "pts Main::main/0$ra" ])
      in
      let server, () =
        with_server ~limits ~dir (p, "insens", s1) (fun _server path ->
            let sock = connect path in
            Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
            @@ fun () ->
            let ic = Unix.in_channel_of_descr sock and oc = Unix.out_channel_of_descr sock in
            let ask line =
              output_string oc (line ^ "\n");
              flush oc;
              input_line ic
            in
            (* fits one read: rejected after the newline arrives *)
            check Alcotest.string "over-limit line answers the exact error"
              "<oversized line>: error: line exceeds limit (200 > 64 bytes); line dropped"
              (ask (String.make 200 'x'));
            (* larger than the reader's buffer: the line streams through
               the discard path, total length still reported exactly *)
            check Alcotest.string "streamed over-limit line reports its full length"
              "<oversized line>: error: line exceeds limit (100000 > 64 bytes); line dropped"
              (ask (String.make 100_000 'y'));
            (* the session survives both *)
            check Alcotest.string "session usable after oversized lines" expected_ok
              (ask "pts Main::main/0$ra"))
      in
      check Alcotest.int "two line-limit hits" 2
        (List.assoc "line_limit_hits" (Server.metrics server));
      check Alcotest.int "served counts the error replies" 3 (Server.served server);
      check Alcotest.int "errors counted" 2 (Server.errors server))

(* Structured error replies with exact messages — and after every one of
   them, the session keeps answering. *)
let test_error_replies_exact () =
  let p, s1 = solve insens in
  let _, s2 = solve twoobj in
  T.with_temp_dir (fun dir ->
      ignore (publish_snapshots dir p s1 s2);
      let cache = Cache.create ~dir () in
      let bad_parse =
        match Query.parse "pts" with
        | Error e -> Engine.render_error ~json:false ~q:"pts" e
        | Ok _ -> Alcotest.fail "bare pts should not parse"
      in
      let script =
        [
          "load key 0000";
          "load frob";
          "metrics now";
          "pts";
          "pts Main::main/0$ra";
        ]
      in
      let expected_last =
        List.hd (simulate ~engines:[| Engine.create s1 |] ~labels:[| "insens" |]
                   [ "pts Main::main/0$ra" ])
      in
      let expected =
        [
          "load key 0000: error: cache miss for key 0000";
          "load frob: error: usage: load path <file> | load key <key>";
          "metrics now: error: usage: metrics";
          bad_parse;
          expected_last;
        ]
      in
      let server, () =
        with_server ~cache ~dir (p, "insens", s1) (fun _server path ->
            match lockstep_client path script expected with
            | None -> ()
            | Some e -> Alcotest.fail e)
      in
      check Alcotest.int "five replies" 5 (Server.served server);
      check Alcotest.int "four structured errors" 4 (Server.errors server);
      check Alcotest.int "no successful load" 0 (Server.loads server))

(* ---------- limits: idle timeout and query budget ---------- *)

let test_idle_timeout () =
  let p, s1 = solve insens in
  T.with_temp_dir (fun dir ->
      let limits = { Server.default_limits with idle_timeout = Some 0.3 } in
      let server, () =
        with_server ~limits ~dir (p, "insens", s1) (fun _server path ->
            let sock = connect path in
            Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
            @@ fun () ->
            let ic = Unix.in_channel_of_descr sock and oc = Unix.out_channel_of_descr sock in
            output_string oc "stats\n";
            flush oc;
            check Alcotest.bool "answered while active" true
              (String.starts_with ~prefix:"stats:" (input_line ic));
            (* go quiet: the server must close the session with a
               structured reply, not just drop the connection *)
            check Alcotest.string "idle timeout reply"
              "<idle>: error: idle timeout (0.3s); closing session" (input_line ic);
            check Alcotest.bool "EOF after the timeout reply" true
              (match input_line ic with exception End_of_file -> true | _ -> false))
      in
      check Alcotest.int "timeout counted" 1 (List.assoc "timeouts" (Server.metrics server)))

(* Channel sessions (no socket needed) for the query-limit semantics. *)
let channel_session ?cache ?limits ?log ~json script p label sol =
  T.with_temp_dir (fun dir ->
      let script_path = Filename.concat dir "script.txt" in
      let out_path = Filename.concat dir "out.txt" in
      Out_channel.with_open_text script_path (fun oc ->
          Out_channel.output_string oc (String.concat "\n" script ^ "\n"));
      let server =
        Server.create ?cache ?limits ?log ~json ~timings:false ~program:p ~label sol
      in
      let outcome =
        In_channel.with_open_text script_path (fun ic ->
            Out_channel.with_open_text out_path (fun oc -> Server.session server ic oc))
      in
      let lines =
        String.split_on_char '\n'
          (String.trim (In_channel.with_open_text out_path In_channel.input_all))
      in
      (server, outcome, lines))

let test_query_limit () =
  let p, s1 = solve insens in
  let limits = { Server.default_limits with max_queries = Some 2 } in
  (* the line over the limit answers an exact error and closes the session *)
  let server, outcome, lines =
    channel_session ~limits ~json:false [ "stats"; "stats"; "stats"; "stats" ] p "insens" s1
  in
  check Alcotest.bool "session closed by the limit" true (outcome = `Limit);
  check Alcotest.int "two answers plus the error reply" 3 (List.length lines);
  check Alcotest.string "exact limit message"
    "stats: error: query limit reached (2 per session); closing session"
    (List.nth lines 2);
  check Alcotest.int "limit hit counted" 1
    (List.assoc "query_limit_hits" (Server.metrics server));
  (* control commands are not queries: an exhausted session still quits
     cleanly and still answers [metrics] *)
  let _, outcome, lines =
    channel_session ~limits ~json:false [ "stats"; "stats"; "metrics"; "quit" ] p "insens" s1
  in
  check Alcotest.bool "quit accepted after the limit" true (outcome = `Quit);
  check Alcotest.int "metrics answered after the limit" 3 (List.length lines);
  check Alcotest.bool "metrics reply" true
    (String.starts_with ~prefix:"metrics:" (List.nth lines 2))

let test_metrics_json_record () =
  let p, s1 = solve insens in
  let _, _, lines = channel_session ~json:true [ "metrics"; "quit" ] p "insens" s1 in
  let line = List.hd lines in
  check Alcotest.bool "metrics is a structured ok record" true
    (String.starts_with ~prefix:{|{"q":"metrics","ok":true,"kind":"metrics",|} line);
  List.iter
    (fun field ->
      let sub = Printf.sprintf {|"%s":|} field in
      let n = String.length sub and len = String.length line in
      let rec found i = i + n <= len && (String.sub line i n = sub || found (i + 1)) in
      check Alcotest.bool (field ^ " present") true (found 0))
    [ "served"; "errors"; "loads"; "sessions"; "active_sessions"; "timeouts";
      "line_limit_hits"; "query_limit_hits"; "disconnects"; "evictions";
      "resident_bytes"; "p50_us"; "p99_us" ]

(* ---------- JSONL request log ---------- *)

let test_request_log () =
  let p, s1 = solve insens in
  T.with_temp_dir (fun dir ->
      let log_path = Filename.concat dir "requests.jsonl" in
      Out_channel.with_open_text log_path (fun log ->
          ignore
            (channel_session ~log ~json:false
               [ "pts Main::main/0$ra"; "pts \"oops"; "quit" ]
               p "insens" s1));
      let records =
        String.split_on_char '\n'
          (String.trim (In_channel.with_open_text log_path In_channel.input_all))
      in
      check Alcotest.int "one record per request, quit unlogged" 2 (List.length records);
      let contains ~sub s =
        let n = String.length sub and len = String.length s in
        let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      List.iteri
        (fun i record ->
          check Alcotest.bool "seq numbers the records in order" true
            (String.starts_with ~prefix:(Printf.sprintf {|{"seq":%d,"session":|} i) record))
        records;
      check Alcotest.bool "the answered query logs ok:true" true
        (contains ~sub:{|"q":"pts Main::main/0$ra","ok":true|} (List.nth records 0));
      check Alcotest.bool "the malformed line logs ok:false" true
        (contains ~sub:{|"ok":false|} (List.nth records 1)))

(* ---------- socket-path lifecycle ---------- *)

let test_socket_path_not_a_socket () =
  let p, s1 = solve insens in
  T.with_temp_dir (fun dir ->
      let path = Filename.concat dir "occupied" in
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc "data\n");
      let server = Server.create ~json:false ~timings:false ~program:p ~label:"insens" s1 in
      (match Server.serve_socket server ~path with
      | Ok () -> Alcotest.fail "bound over a regular file"
      | Error msg ->
        check Alcotest.string "refused with the exact reason"
          (path ^ ": exists and is not a socket") msg);
      check Alcotest.bool "the file was not clobbered" true (Sys.file_exists path))

let test_socket_path_stale_file_reclaimed () =
  let p, s1 = solve insens in
  T.with_temp_dir (fun dir ->
      let path = Filename.concat dir "ipa.sock" in
      (* fabricate an unclean shutdown: a bound-then-abandoned socket file *)
      let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind dead (Unix.ADDR_UNIX path);
      Unix.close dead;
      check Alcotest.bool "stale socket file exists" true (Sys.file_exists path);
      let server, () =
        with_server ~dir (p, "insens", s1) (fun _server path ->
            let sock = connect path in
            Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
            @@ fun () ->
            let ic = Unix.in_channel_of_descr sock and oc = Unix.out_channel_of_descr sock in
            output_string oc "stats\nquit\n";
            flush oc;
            check Alcotest.bool "server live on the reclaimed path" true
              (String.starts_with ~prefix:"stats:" (input_line ic)))
      in
      check Alcotest.int "one session" 1 (List.assoc "sessions" (Server.metrics server));
      check Alcotest.bool "socket file removed on shutdown" true (not (Sys.file_exists path)))

let test_socket_path_live_server_refused () =
  let p, s1 = solve insens in
  T.with_temp_dir (fun dir ->
      let _, () =
        with_server ~dir (p, "insens", s1) (fun _server path ->
            let rival =
              Server.create ~json:false ~timings:false ~program:p ~label:"insens" s1
            in
            match Server.serve_socket rival ~path with
            | Ok () -> Alcotest.fail "two servers bound the same socket"
            | Error msg ->
              check Alcotest.string "refused: the socket is live"
                (path ^ ": another server is live on this socket") msg)
      in
      ())

let () =
  Alcotest.run "serve"
    [
      ( "concurrency",
        [
          Alcotest.test_case "4 clients, interleaved hot-swaps, byte-identical" `Quick
            test_concurrent_hot_swaps;
          Alcotest.test_case "budget-forced eviction during live queries" `Quick
            test_eviction_under_live_queries;
          Alcotest.test_case "metrics counters: jobs=4 = jobs=1" `Quick
            test_metrics_jobs_determinism;
        ] );
      ( "faults",
        [
          Alcotest.test_case "half-closed connection drains its answers" `Quick
            test_half_closed_connection;
          Alcotest.test_case "abrupt drop does not poison the server" `Quick
            test_abrupt_drop_then_next_client;
          Alcotest.test_case "oversized lines mid-stream" `Quick test_oversized_line_mid_stream;
          Alcotest.test_case "exact structured error replies" `Quick test_error_replies_exact;
        ] );
      ( "limits",
        [
          Alcotest.test_case "idle timeout closes with a reply" `Quick test_idle_timeout;
          Alcotest.test_case "query limit per session" `Quick test_query_limit;
          Alcotest.test_case "metrics record shape" `Quick test_metrics_json_record;
          Alcotest.test_case "JSONL request log" `Quick test_request_log;
        ] );
      ( "socket-path",
        [
          Alcotest.test_case "regular file refused" `Quick test_socket_path_not_a_socket;
          Alcotest.test_case "stale socket file reclaimed" `Quick
            test_socket_path_stale_file_reclaimed;
          Alcotest.test_case "live server refused" `Quick test_socket_path_live_server_refused;
        ] );
    ]
