(* Domain_pool unit tests, and determinism of the parallel experiment
   harness: any --jobs must produce results identical to --jobs 1. *)

module Pool = Ipa_support.Domain_pool
module E = Ipa_harness.Experiments
module Config = Ipa_harness.Config
module Flavors = Ipa_core.Flavors

let check = Alcotest.check

(* ---------- Domain_pool ---------- *)

let test_pool_ordering () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 100 Fun.id in
      let out = Pool.map pool (fun x -> x * x) input in
      check (Alcotest.array Alcotest.int) "ordered" (Array.map (fun x -> x * x) input) out;
      check (Alcotest.list Alcotest.int) "map_list" [ 2; 4; 6 ]
        (Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]);
      check (Alcotest.list Alcotest.int) "empty" [] (Pool.map_list pool Fun.id []);
      check (Alcotest.list Alcotest.int) "singleton" [ 9 ] (Pool.map_list pool Fun.id [ 9 ]))

let test_pool_uneven_tasks () =
  (* Unequal task durations must not reorder results. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let out =
        Pool.map_list pool
          (fun x ->
            let spin = if x mod 3 = 0 then 100_000 else 10 in
            let acc = ref 0 in
            for i = 1 to spin do
              acc := (!acc + (i * x)) land max_int
            done;
            x)
          (List.init 30 Fun.id)
      in
      check (Alcotest.list Alcotest.int) "input order" (List.init 30 Fun.id) out)

exception Boom of int

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* the lowest-index failure wins, whatever finishes first *)
      match Pool.map pool (fun x -> if x mod 2 = 1 then raise (Boom x) else x) (Array.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n -> check Alcotest.int "lowest failing index" 1 n);
  (* the pool survives a failing batch *)
  Pool.with_pool ~jobs:2 (fun pool ->
      (match Pool.map_list pool (fun x -> if x = 0 then raise (Boom 0) else x) [ 0; 1 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom _ -> ());
      check (Alcotest.list Alcotest.int) "usable after failure" [ 1; 2 ]
        (Pool.map_list pool Fun.id [ 1; 2 ]))

let test_pool_reuse () =
  let pool = Pool.create ~jobs:2 in
  check Alcotest.int "jobs" 2 (Pool.jobs pool);
  for round = 1 to 5 do
    let out = Pool.map_list pool (fun x -> x + round) [ 10; 20; 30 ] in
    check (Alcotest.list Alcotest.int)
      (Printf.sprintf "round %d" round)
      [ 10 + round; 20 + round; 30 + round ]
      out
  done;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Domain_pool.map: pool is shut down") (fun () ->
      ignore (Pool.map_list pool Fun.id [ 1 ]))

let test_run_shards () =
  (* run_shards is one synchronization round of a sharded solve: results in
     shard order, pooled domains reused across rounds. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 4 do
        let out = Pool.run_shards pool ~shards:5 (fun sid -> (round * 10) + sid) in
        check (Alcotest.array Alcotest.int)
          (Printf.sprintf "round %d in shard order" round)
          (Array.init 5 (fun sid -> (round * 10) + sid))
          out
      done;
      (* a single shard runs inline, like map's singleton case *)
      let caller = Domain.self () in
      let out = Pool.run_shards pool ~shards:1 (fun _ -> Domain.self () = caller) in
      check (Alcotest.array Alcotest.bool) "one shard runs inline" [| true |] out;
      (* deterministic exception discipline: lowest shard index wins *)
      (match Pool.run_shards pool ~shards:4 (fun sid -> if sid >= 2 then raise (Boom sid)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n -> check Alcotest.int "lowest failing shard" 2 n);
      Alcotest.check_raises "shards < 1"
        (Invalid_argument "Domain_pool.run_shards: shards must be >= 1") (fun () ->
          ignore (Pool.run_shards pool ~shards:0 Fun.id)))

let test_pool_sequential () =
  (* jobs = 1 spawns no domains and runs inline. *)
  let pool = Pool.create ~jobs:1 in
  let on_caller = ref true in
  let caller = Domain.self () in
  let out =
    Pool.map_list pool
      (fun x ->
        if Domain.self () <> caller then on_caller := false;
        x * 2)
      [ 1; 2; 3 ]
  in
  check (Alcotest.list Alcotest.int) "results" [ 2; 4; 6 ] out;
  check Alcotest.bool "ran inline" true !on_caller;
  Pool.shutdown pool;
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Domain_pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0))

(* ---------- harness determinism ---------- *)

(* Each call gets its own (memory-only) cache, so the jobs=1 and jobs=4
   runs being compared never share solved state. *)
let tiny jobs : Config.t =
  { scale = 0.02; budget = 2_000_000; jobs; cache = Ipa_harness.Cache.create () }

(* Everything except wall-clock must match the sequential run exactly:
   bench, analysis, derivations, timeout flags, precision, taint counts,
   and the solver counters. *)
let strip (r : E.run) = { r with seconds = 0.0 }

let same_runs name a b =
  check Alcotest.bool (name ^ ": runs identical modulo seconds") true
    (List.map strip a = List.map strip b);
  (* and so are the rendered table rows once the time cell is masked *)
  let row (r : E.run) = E.run_to_row (strip r) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    (name ^ ": rows identical")
    (List.map row a) (List.map row b)

let test_fig1_deterministic () =
  same_runs "fig1" (E.Fig1.compute (tiny 1)) (E.Fig1.compute (tiny 4))

let test_figs567_deterministic () =
  let obj2 = Flavors.Object_sens { depth = 2; heap = 1 } in
  same_runs "fig5" (E.Figs567.compute (tiny 1) obj2) (E.Figs567.compute (tiny 4) obj2)

let test_fig4_deterministic () =
  let a = E.Fig4.compute (tiny 1) and b = E.Fig4.compute (tiny 4) in
  check Alcotest.bool "fig4 rows identical" true (a = b)

let test_taint_deterministic () =
  same_runs "taint" (E.Taint_study.compute (tiny 1)) (E.Taint_study.compute (tiny 4))

(* ---------- cold-cache publish race ---------- *)

module Cache = Ipa_harness.Cache

(* Four domains race to fill the same cold on-disk cache with the same
   shared first pass. Concurrent misses may each solve (wasted work, never
   wrong results), but the temp-file + hard-link publish admits exactly one
   writer — the key must never be double-written — and every task must get
   the same solution a sequential cold run produces. *)
let test_cold_cache_race () =
  Ipa_testlib.with_temp_dir (fun dir ->
      let build () =
        Ipa_synthetic.Dacapo.build ~scale:0.02
          (Option.get (Ipa_synthetic.Dacapo.find "chart"))
      in
      let cache = Cache.create ~dir () in
      let results =
        Pool.with_pool ~jobs:4 (fun pool ->
            Pool.map_list pool
              (fun _ -> fst (Cache.base_pass cache ~budget:0 (build ())))
              [ 0; 1; 2; 3 ])
      in
      let s = Cache.stats cache in
      check Alcotest.int "exactly one writer" 1 s.writes;
      check Alcotest.int "every task served" 4 (s.mem_hits + s.disk_hits + s.misses);
      check Alcotest.int "nothing stale" 0 s.stale;
      let snaps =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".snap")
      in
      check Alcotest.int "one snapshot on disk" 1 (List.length snaps);
      (* identical to a sequential cold solve, for every racing task *)
      let seq, _ = Cache.base_pass (Cache.create ()) ~budget:0 (build ()) in
      let canon = Ipa_testlib.canon_native seq.solution in
      List.iteri
        (fun i (r : Ipa_core.Analysis.result) ->
          check
            (Alcotest.list Alcotest.string)
            (Printf.sprintf "task %d relations" i)
            canon
            (Ipa_testlib.canon_native r.solution);
          check Alcotest.int
            (Printf.sprintf "task %d derivations" i)
            seq.solution.derivations r.solution.derivations)
        results)

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "uneven tasks" `Quick test_pool_uneven_tasks;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "reuse and shutdown" `Quick test_pool_reuse;
          Alcotest.test_case "run_shards rounds" `Quick test_run_shards;
          Alcotest.test_case "sequential inline" `Quick test_pool_sequential;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig1 jobs=4" `Slow test_fig1_deterministic;
          Alcotest.test_case "figs567 jobs=4" `Slow test_figs567_deterministic;
          Alcotest.test_case "fig4 jobs=4" `Slow test_fig4_deterministic;
          Alcotest.test_case "taint jobs=4" `Slow test_taint_deterministic;
        ] );
      ("cache race", [ Alcotest.test_case "cold publish, jobs=4" `Quick test_cold_cache_race ]);
    ]
