(* Snapshot and codec battery:
   - unit tests of the binary codec's primitives (varint boundaries, zigzag
     extremes, float bit-patterns, strings with NULs, canonical int sets)
     and of its failure mode (every bad read raises [Codec.Corrupt]);
   - QCheck round-trip: encode∘decode is the identity on solved snapshots
     of random programs (random builder output, synthetic-world motifs and
     the quickstart program; every flavor; with and without a budget), and
     re-encoding the decoded snapshot reproduces the bytes exactly;
   - QCheck robustness: any single-byte corruption or truncation of a
     snapshot yields a versioned [error] — never an exception, never a
     silently different solution;
   - framing: version bumps, wrong program, wrong key, trailing garbage and
     [inspect] on the header. *)

module Codec = Ipa_support.Codec
module W = Codec.Writer
module R = Codec.Reader
module Int_set = Ipa_support.Int_set
module Snapshot = Ipa_core.Snapshot
module Analysis = Ipa_core.Analysis
module Flavors = Ipa_core.Flavors
module Heuristics = Ipa_core.Heuristics
module Solver = Ipa_core.Solver
module T = Ipa_testlib

let check = Alcotest.check

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- codec primitives ---------- *)

let test_codec_uint () =
  let values = [ 0; 1; 127; 128; 255; 16383; 16384; 1 lsl 30; (1 lsl 62) - 1; max_int ] in
  let w = W.create () in
  List.iter (W.uint w) values;
  let r = R.of_string (W.contents w) in
  List.iter (fun v -> check Alcotest.int (string_of_int v) v (R.uint r)) values;
  check Alcotest.bool "at end" true (R.at_end r);
  (match W.uint (W.create ()) (-1) with
  | () -> Alcotest.fail "negative uint accepted"
  | exception Invalid_argument _ -> ())

let test_codec_int () =
  let values = [ 0; 1; -1; 2; -2; 63; -64; 64; 12345; -98765; max_int; min_int ] in
  let w = W.create () in
  List.iter (W.int w) values;
  let r = R.of_string (W.contents w) in
  List.iter (fun v -> check Alcotest.int (string_of_int v) v (R.int r)) values;
  check Alcotest.bool "at end" true (R.at_end r)

let test_codec_float () =
  let values = [ 0.0; -0.0; 1.5; -3.25; infinity; neg_infinity; nan; 1e308; 4.9e-324 ] in
  let w = W.create () in
  List.iter (W.float w) values;
  let r = R.of_string (W.contents w) in
  List.iter
    (fun v ->
      (* bit-exact, including -0.0 and nan *)
      check Alcotest.int64 (string_of_float v) (Int64.bits_of_float v)
        (Int64.bits_of_float (R.float r)))
    values

let test_codec_string () =
  let values = [ ""; "a"; "with\000nul\255bytes"; String.make 1000 'x' ] in
  let w = W.create () in
  List.iter (W.string w) values;
  W.bool w true;
  W.bool w false;
  W.u8 w 200;
  let r = R.of_string (W.contents w) in
  List.iter (fun v -> check Alcotest.string "string" v (R.string r)) values;
  check Alcotest.bool "true" true (R.bool r);
  check Alcotest.bool "false" false (R.bool r);
  check Alcotest.int "u8" 200 (R.u8 r)

let test_codec_containers () =
  let arr = [| 0; 7; 3; max_int; 1 |] in
  let set = Int_set.create () in
  List.iter (fun v -> ignore (Int_set.add set v)) [ 42; 0; 7; 1000000; 8 ];
  let w = W.create () in
  W.int_array w arr;
  W.int_array w [||];
  W.int_set w set;
  W.int_set w (Int_set.create ());
  W.option w W.uint (Some 9);
  W.option w W.uint None;
  let r = R.of_string (W.contents w) in
  check (Alcotest.array Alcotest.int) "array" arr (R.int_array r);
  check (Alcotest.array Alcotest.int) "empty array" [||] (R.int_array r);
  check (Alcotest.list Alcotest.int) "set" (Int_set.to_sorted_list set)
    (Int_set.to_sorted_list (R.int_set r));
  check Alcotest.int "empty set" 0 (Int_set.cardinal (R.int_set r));
  check (Alcotest.option Alcotest.int) "some" (Some 9) (R.option r R.uint);
  check (Alcotest.option Alcotest.int) "none" None (R.option r R.uint)

let expect_corrupt name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Codec.Corrupt" name
  | exception Codec.Corrupt _ -> ()

let test_codec_corrupt () =
  (* reads past the end *)
  let w = W.create () in
  W.string w "hello";
  let bytes = W.contents w in
  for n = 0 to String.length bytes - 1 do
    expect_corrupt
      (Printf.sprintf "prefix %d" n)
      (fun () -> R.string (R.of_string (String.sub bytes 0 n)))
  done;
  (* an unterminated varint *)
  expect_corrupt "varint overflow" (fun () -> R.uint (R.of_string (String.make 10 '\255')));
  (* a duplicate (gap 0) in a canonical set *)
  let w = W.create () in
  W.uint w 2;
  W.uint w 5;
  W.uint w 0;
  expect_corrupt "duplicate set element" (fun () -> R.int_set (R.of_string (W.contents w)));
  (* a failed magic check *)
  expect_corrupt "expect" (fun () -> R.expect (R.of_string "XXXX") "IPSN")

(* ---------- solved snapshots ---------- *)

(* Solve [p], returning the result, its cache key and (for introspective
   runs) the first-pass metrics — mirroring what the cache and the CLI
   store. *)
let solved ?(budget = 0) p flavor heuristic =
  let program_digest = Snapshot.digest_program p in
  match heuristic with
  | None ->
    let config = Solver.plain p ~budget (Flavors.strategy p flavor) in
    ( Analysis.run_config p ~label:(Flavors.to_string flavor) config,
      Snapshot.config_key ~program_digest config,
      None )
  | Some h ->
    let ir = Analysis.run_introspective ~budget p flavor h in
    ( ir.second,
      Snapshot.config_key ~program_digest (Analysis.second_pass_config ~budget p flavor ir.refine),
      Some ir.metrics )

let snapshot_of p (r : Analysis.result) key metrics =
  {
    Snapshot.key;
    program_digest = Snapshot.digest_program p;
    label = r.label;
    seconds = r.seconds;
    solution = r.solution;
    metrics;
  }

(* The deep comparison behind both the unit and the property round-trips.
   [T.canon_native] self-checks each solution first, so every decoded
   solution also passes [Solution.self_check]. *)
let roundtrip_check p (snap : Snapshot.t) =
  let bytes = Snapshot.encode snap in
  match Snapshot.decode ~program:p ~expect_key:snap.key bytes with
  | Error e -> Alcotest.failf "decode failed: %s" (Snapshot.error_to_string e)
  | Ok got ->
    check (Alcotest.list Alcotest.string) "relations" (T.canon_native snap.solution)
      (T.canon_native got.solution);
    check Alcotest.int "derivations" snap.solution.derivations got.solution.derivations;
    check Alcotest.bool "outcome" true (snap.solution.outcome = got.solution.outcome);
    check Alcotest.bool "counters" true (snap.solution.counters = got.solution.counters);
    check Alcotest.string "label" snap.label got.label;
    check Alcotest.bool "seconds" true (snap.seconds = got.seconds);
    check Alcotest.string "key" snap.key got.key;
    (match (snap.metrics, got.metrics) with
    | None, None -> ()
    | Some a, Some b -> check Alcotest.bool "metrics" true (a = b)
    | _ -> Alcotest.fail "metrics presence changed");
    (* the encoding is canonical: re-encoding the decoded snapshot
       reproduces the bytes exactly *)
    check Alcotest.string "canonical bytes" bytes (Snapshot.encode got)

let boxes = lazy (T.parse_exn T.boxes_src)

let test_roundtrip_boxes () =
  let p = Lazy.force boxes in
  List.iter
    (fun (flavor, heuristic) ->
      let r, key, metrics = solved p flavor heuristic in
      roundtrip_check p (snapshot_of p r key metrics);
      (* and without metrics *)
      roundtrip_check p (snapshot_of p r key None))
    [
      (Flavors.Insensitive, None);
      (Flavors.Object_sens { depth = 2; heap = 1 }, None);
      (Flavors.Object_sens { depth = 2; heap = 1 }, Some Heuristics.default_a);
      (Flavors.Call_site { depth = 2; heap = 1 }, Some Heuristics.default_b);
    ]

let test_roundtrip_budget_exceeded () =
  let p = Lazy.force boxes in
  let r, key, metrics = solved ~budget:5 p (Flavors.Object_sens { depth = 2; heap = 1 }) None in
  check Alcotest.bool "timed out" true r.timed_out;
  roundtrip_check p (snapshot_of p r key metrics)

(* ---------- QCheck: round-trip on random programs ---------- *)

let synthetic_program seed =
  let w = Ipa_synthetic.World.create ~seed in
  (match seed mod 3 with
  | 0 ->
    Ipa_synthetic.Motifs.chains w ~n:3 ~depth:2;
    Ipa_synthetic.Motifs.factory_boxes w ~n:2
  | 1 ->
    Ipa_synthetic.Motifs.listeners w ~n:3;
    Ipa_synthetic.Motifs.taint_pipes w ~n:2
  | _ ->
    Ipa_synthetic.Motifs.exceptional w ~n:2;
    Ipa_synthetic.Motifs.dispatch_storm w ~wrappers:2 ~payload:2 ~depth:2);
  Ipa_synthetic.World.finish w

let flavors =
  [|
    Flavors.Insensitive;
    Flavors.Object_sens { depth = 2; heap = 1 };
    Flavors.Call_site { depth = 2; heap = 1 };
    Flavors.Type_sens { depth = 2; heap = 1 };
    Flavors.Hybrid { depth = 2; heap = 1 };
  |]

let gen_case =
  QCheck2.Gen.(
    let* family = int_range 0 2 in
    let* seed = int_range 0 9999 in
    let* flavor_i = int_range 0 (Array.length flavors - 1) in
    let* heuristic_i = int_range 0 2 in
    let* budgeted = frequencyl [ (4, false); (1, true) ] in
    return (family, seed, flavor_i, heuristic_i, budgeted))

let program_of_case (family, seed, _, _, _) =
  match family with
  | 0 -> T.random_program seed
  | 1 -> synthetic_program seed
  | _ -> Lazy.force boxes

let prop_roundtrip case =
  let (_, _, flavor_i, heuristic_i, budgeted) = case in
  let p = program_of_case case in
  let flavor = flavors.(flavor_i) in
  let heuristic =
    match heuristic_i with
    | 0 -> None
    | 1 -> Some Heuristics.default_a
    | _ -> Some Heuristics.default_b
  in
  let budget = if budgeted then 300 else 0 in
  let r, key, metrics = solved ~budget p flavor heuristic in
  roundtrip_check p (snapshot_of p r key metrics);
  true

(* ---------- QCheck: corruption and truncation ---------- *)

(* One reference snapshot, byte-level mutations against it. *)
let reference_bytes =
  lazy
    (let p = Lazy.force boxes in
     let r, key, metrics = solved p (Flavors.Object_sens { depth = 2; heap = 1 }) None in
     Snapshot.encode (snapshot_of p r key metrics))

let gen_mutation =
  QCheck2.Gen.(
    let* pos = int_range 0 (String.length (Lazy.force reference_bytes) - 1) in
    let* mask = int_range 1 255 in
    return (pos, mask))

let prop_corruption_fails_cleanly (pos, mask) =
  let bytes = Bytes.of_string (Lazy.force reference_bytes) in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor mask));
  let p = Lazy.force boxes in
  match Snapshot.decode ~program:p (Bytes.to_string bytes) with
  | Error _ -> true
  | Ok _ -> QCheck2.Test.fail_reportf "byte %d ^ 0x%02x accepted" pos mask
  | exception e ->
    QCheck2.Test.fail_reportf "byte %d ^ 0x%02x raised %s" pos mask (Printexc.to_string e)

let gen_truncation =
  QCheck2.Gen.(int_range 0 (String.length (Lazy.force reference_bytes) - 1))

let prop_truncation_fails_cleanly n =
  let p = Lazy.force boxes in
  match Snapshot.decode ~program:p (String.sub (Lazy.force reference_bytes) 0 n) with
  | Error _ -> true
  | Ok _ -> QCheck2.Test.fail_reportf "prefix of %d bytes accepted" n
  | exception e -> QCheck2.Test.fail_reportf "prefix of %d bytes raised %s" n (Printexc.to_string e)

(* [inspect] must be exactly as robust. *)
let prop_corrupt_inspect (pos, mask) =
  let bytes = Bytes.of_string (Lazy.force reference_bytes) in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor mask));
  match Snapshot.inspect (Bytes.to_string bytes) with
  | Error _ | Ok _ -> true
  | exception e ->
    QCheck2.Test.fail_reportf "inspect: byte %d ^ 0x%02x raised %s" pos mask
      (Printexc.to_string e)

(* ---------- framing errors ---------- *)

let test_version_mismatch () =
  (* The version varint is the byte right after the 4-byte magic and lives
     outside the checksum: a format bump reports itself as such. *)
  let bytes = Bytes.of_string (Lazy.force reference_bytes) in
  check Alcotest.char "layout: version byte" '\004' (Bytes.get bytes 4);
  Bytes.set bytes 4 '\005';
  match Snapshot.decode ~program:(Lazy.force boxes) (Bytes.to_string bytes) with
  | Error (Snapshot.Version_mismatch { found = 5; expected = 4 }) -> ()
  | Error e -> Alcotest.failf "expected Version_mismatch: %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "future version accepted"

let test_framing_errors () =
  let bytes = Lazy.force reference_bytes in
  let p = Lazy.force boxes in
  let expect name want got =
    match got with
    | Error e when e = want -> ()
    | Error e -> Alcotest.failf "%s: wrong error: %s" name (Snapshot.error_to_string e)
    | Ok _ -> Alcotest.failf "%s: accepted" name
  in
  expect "empty" Snapshot.Truncated (Snapshot.decode ~program:p "");
  expect "bad magic" Snapshot.Bad_magic (Snapshot.decode ~program:p "garbage data");
  expect "trailing bytes" (Snapshot.Malformed "trailing bytes after payload")
    (Snapshot.decode ~program:p (bytes ^ "x"));
  (* a different program of the same shape *)
  (match Snapshot.decode ~program:(T.random_program 7) bytes with
  | Error (Snapshot.Program_mismatch _) -> ()
  | Error e -> Alcotest.failf "expected Program_mismatch: %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "wrong program accepted");
  (* the right program under the wrong key *)
  match Snapshot.decode ~program:p ~expect_key:(String.make 32 '0') bytes with
  | Error (Snapshot.Key_mismatch _) -> ()
  | Error e -> Alcotest.failf "expected Key_mismatch: %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "wrong key accepted"

let test_inspect () =
  let p = Lazy.force boxes in
  let r, key, _ = solved p Flavors.Insensitive None in
  let snap = snapshot_of p r key None in
  match Snapshot.inspect (Snapshot.encode snap) with
  | Error e -> Alcotest.failf "inspect failed: %s" (Snapshot.error_to_string e)
  | Ok info ->
    check Alcotest.string "key" key info.info_key;
    check Alcotest.string "digest" (Snapshot.digest_program p) info.info_program_digest;
    check Alcotest.string "label" "insens" info.info_label;
    check Alcotest.bool "seconds" true (info.info_seconds = r.seconds)

(* ---------- keys and digests ---------- *)

let test_config_key_discriminates () =
  let p = Lazy.force boxes in
  let program_digest = Snapshot.digest_program p in
  let key = Snapshot.config_key ~program_digest in
  let base = Solver.plain p (Flavors.strategy p Flavors.Insensitive) in
  check Alcotest.string "deterministic" (key base) (key base);
  let skip = Int_set.create () in
  ignore (Int_set.add skip 3);
  let variants =
    [
      ("budget", { base with budget = 5 });
      ("order fifo", { base with order = Solver.Fifo });
      ("order lifo", { base with order = Solver.Lifo });
      ("collapse", { base with collapse_cycles = not base.collapse_cycles });
      ("field-based", { base with field_sensitive = false });
      ( "refined strategy",
        { base with refined_strategy = Flavors.strategy p (Flavors.Object_sens { depth = 2; heap = 1 }) } );
      ( "refine sets",
        { base with refine = Ipa_core.Refine.All_except { skip_objects = skip; skip_sites = Int_set.create () } } );
    ]
  in
  List.iter
    (fun (name, c) ->
      if key c = key base then Alcotest.failf "%s does not change the key" name)
    variants;
  let other_digest = Snapshot.digest_program (T.random_program 3) in
  if Snapshot.config_key ~program_digest:other_digest base = key base then
    Alcotest.fail "program digest does not change the key"

let test_program_digest () =
  let p = Lazy.force boxes in
  check Alcotest.string "deterministic" (Snapshot.digest_program p) (Snapshot.digest_program p);
  check Alcotest.bool "reparse stable" true
    (Snapshot.digest_program (T.parse_exn T.boxes_src) = Snapshot.digest_program p);
  check Alcotest.bool "discriminates" true
    (Snapshot.digest_program (T.random_program 1) <> Snapshot.digest_program (T.random_program 2))

let () =
  Alcotest.run "snapshot"
    [
      ( "codec",
        [
          Alcotest.test_case "uint boundaries" `Quick test_codec_uint;
          Alcotest.test_case "zigzag extremes" `Quick test_codec_int;
          Alcotest.test_case "float bit patterns" `Quick test_codec_float;
          Alcotest.test_case "strings and scalars" `Quick test_codec_string;
          Alcotest.test_case "arrays, sets, options" `Quick test_codec_containers;
          Alcotest.test_case "corrupt inputs raise" `Quick test_codec_corrupt;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "boxes, all stored forms" `Quick test_roundtrip_boxes;
          Alcotest.test_case "budget-exceeded solution" `Quick test_roundtrip_budget_exceeded;
          qtest ~count:25 "random solved programs" gen_case prop_roundtrip;
        ] );
      ( "robustness",
        [
          qtest ~count:200 "single-byte corruption" gen_mutation prop_corruption_fails_cleanly;
          qtest ~count:100 "truncation" gen_truncation prop_truncation_fails_cleanly;
          qtest ~count:100 "corrupt inspect" gen_mutation prop_corrupt_inspect;
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          Alcotest.test_case "framing errors" `Quick test_framing_errors;
          Alcotest.test_case "inspect" `Quick test_inspect;
        ] );
      ( "keys",
        [
          Alcotest.test_case "config key discriminates" `Quick test_config_key_discriminates;
          Alcotest.test_case "program digest" `Quick test_program_digest;
        ] );
    ]
