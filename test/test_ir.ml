(* Tests for the IR: builder invariants, hierarchy/dispatch, well-formedness
   checking, and pretty-printing. *)

module B = Ipa_ir.Builder
module P = Ipa_ir.Program
module Wf = Ipa_ir.Wf
module Pretty = Ipa_ir.Pretty

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_failure what substring f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Failure" what
  | exception Failure msg ->
    if not (contains msg substring) then
      Alcotest.failf "%s: message %S lacks %S" what msg substring

(* ---------- builder ---------- *)

let test_builder_classes () =
  let b = B.create () in
  let o = B.add_class b "Object" in
  let a = B.add_class b ~super:o "A" in
  expect_failure "duplicate class" "duplicate class A" (fun () -> B.add_class b "A");
  let i = B.add_interface b "I" in
  let c = B.add_class b ~super:a ~interfaces:[ i ] "C" in
  let m = B.add_method b ~owner:c ~name:"main" ~static:true ~params:[] () in
  B.add_entry b m;
  let p = B.finish b in
  check Alcotest.int "classes" 4 (P.n_classes p);
  check Alcotest.bool "interface flag" true (P.class_info p i).is_interface;
  check (Alcotest.option Alcotest.int) "find_class" (Some a) (P.find_class p "A");
  check (Alcotest.option Alcotest.int) "find miss" None (P.find_class p "Z")

let test_builder_method_rules () =
  let b = B.create () in
  let o = B.add_class b "Object" in
  let a = B.add_class b ~super:o "A" in
  let m = B.add_method b ~owner:a ~name:"f" ~params:[ "x"; "y" ] () in
  ignore (B.this b m);
  ignore (B.formal b m 0);
  ignore (B.formal b m 1);
  Alcotest.check_raises "formal oob" (Invalid_argument "Builder.formal: method has no formal 2")
    (fun () -> ignore (B.formal b m 2));
  expect_failure "duplicate method" "duplicate method A::f/2" (fun () ->
      ignore (B.add_method b ~owner:a ~name:"f" ~params:[ "a"; "b" ] ()));
  (* same name, different arity is a different signature *)
  ignore (B.add_method b ~owner:a ~name:"f" ~params:[ "x" ] ());
  let s = B.add_method b ~owner:a ~name:"g" ~static:true ~params:[] () in
  expect_failure "this on static" "static or abstract" (fun () -> ignore (B.this b s));
  expect_failure "abstract static" "cannot be both" (fun () ->
      ignore (B.add_method b ~owner:a ~name:"h" ~static:true ~abstract:true ~params:[] ()));
  expect_failure "duplicate var" "duplicate variable x" (fun () -> ignore (B.add_var b m "x"))

let test_builder_return_var () =
  let b = B.create () in
  let o = B.add_class b "Object" in
  let a = B.add_class b ~super:o "A" in
  let m = B.add_method b ~owner:a ~name:"f" ~params:[ "x" ] () in
  B.return_ b m (B.formal b m 0);
  B.return_ b m (B.formal b m 0);
  let main = B.add_method b ~owner:a ~name:"main" ~static:true ~params:[] () in
  B.add_entry b main;
  let p = B.finish b in
  let mi = P.meth_info p m in
  check Alcotest.bool "ret var allocated once" true (mi.ret_var <> None);
  check Alcotest.int "two returns" 2 (Array.length mi.body)

(* ---------- hierarchy and dispatch ---------- *)

let test_subtype () =
  let b = B.create () in
  let o = B.add_class b "Object" in
  let a = B.add_class b ~super:o "A" in
  let bb = B.add_class b ~super:a "B" in
  let i = B.add_interface b "I" in
  let j = B.add_interface b ~interfaces:[ i ] "J" in
  let c = B.add_class b ~super:a ~interfaces:[ j ] "C" in
  let main = B.add_method b ~owner:a ~name:"main" ~static:true ~params:[] () in
  B.add_entry b main;
  let p = B.finish b in
  let sub s t = P.subtype p ~sub:s ~super:t in
  check Alcotest.bool "reflexive" true (sub a a);
  check Alcotest.bool "direct" true (sub bb a);
  check Alcotest.bool "transitive" true (sub bb o);
  check Alcotest.bool "not up-down" false (sub a bb);
  check Alcotest.bool "interface direct" true (sub c j);
  check Alcotest.bool "interface transitive" true (sub c i);
  check Alcotest.bool "sibling" false (sub bb c);
  check Alcotest.bool "class not iface" false (sub a i)

let test_dispatch () =
  let b = B.create () in
  let o = B.add_class b "Object" in
  let a = B.add_class b ~super:o "A" in
  let bb = B.add_class b ~super:a "B" in
  let c = B.add_class b ~super:bb "C" in
  let m_a = B.add_method b ~owner:a ~name:"run" ~params:[] () in
  B.return_ b m_a (B.this b m_a);
  let m_b = B.add_method b ~owner:bb ~name:"run" ~params:[] () in
  B.return_ b m_b (B.this b m_b);
  let main = B.add_method b ~owner:a ~name:"main" ~static:true ~params:[] () in
  B.add_entry b main;
  let p = B.finish b in
  let s = Option.get (P.find_sig p ~name:"run" ~arity:0) in
  check (Alcotest.option Alcotest.int) "own" (Some m_a) (P.dispatch p a s);
  check (Alcotest.option Alcotest.int) "override" (Some m_b) (P.dispatch p bb s);
  check (Alcotest.option Alcotest.int) "inherit override" (Some m_b) (P.dispatch p c s);
  check (Alcotest.option Alcotest.int) "undefined above" None (P.dispatch p o s);
  check
    (Alcotest.slist Alcotest.int compare)
    "implementations" [ m_a; m_b ] (P.implementations p s);
  let consistent = ref true in
  P.iter_dispatch p (fun cls sg meth ->
      if P.dispatch p cls sg <> Some meth then consistent := false);
  check Alcotest.bool "iter_dispatch consistent" true !consistent

let test_dispatch_pairs_exact () =
  let b = B.create () in
  let o = B.add_class b "Object" in
  let a = B.add_class b ~super:o "A" in
  let m = B.add_method b ~owner:a ~name:"run" ~params:[] () in
  B.return_ b m (B.this b m);
  let main = B.add_method b ~owner:a ~name:"main" ~static:true ~params:[] () in
  B.add_entry b main;
  let p = B.finish b in
  let pairs = ref 0 in
  P.iter_dispatch p (fun _ _ _ -> incr pairs);
  (* A declares run/0 and main/0; Object declares nothing. *)
  check Alcotest.int "pairs" 2 !pairs

let test_cycle_detection () =
  let ci name super : P.class_info =
    { class_name = name; super; interfaces = []; is_interface = false; declared = [] }
  in
  match
    P.make
      ~classes:[| ci "A" (Some 1); ci "B" (Some 0) |]
      ~fields:[||] ~sigs:[||] ~meths:[||] ~vars:[||] ~heaps:[||] ~invos:[||] ~entries:[] ()
  with
  | _ -> Alcotest.fail "expected cycle failure"
  | exception Failure msg ->
    check Alcotest.bool "message" true (contains msg "cyclic class hierarchy")

(* ---------- names ---------- *)

let test_names () =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let box = Option.get (P.find_class p "Box") in
  let set_sig = Option.get (P.find_sig p ~name:"set" ~arity:1) in
  let set = Option.get (P.dispatch p box set_sig) in
  check Alcotest.string "meth name" "Box::set/1" (P.meth_full_name p set);
  check Alcotest.string "field name" "Box::val" (P.field_full_name p 0);
  check Alcotest.bool "heap name" true (contains (P.heap_full_name p 0) "new");
  check Alcotest.bool "var name" true (contains (P.var_full_name p 0) "$")

(* ---------- Wf violations (via handcrafted Program.make) ---------- *)

let base_sig : P.sig_info = { sig_name = "m"; arity = 0 }

let mk_meth ?(owner = 1) ?(static = true) ?(abstract = false) ?this ?(formals = [||]) ?ret
    ?(catches = [||]) ?(body = [||]) name : P.meth_info =
  {
    meth_name = name;
    meth_owner = owner;
    meth_sig = 0;
    is_static_meth = static;
    is_abstract = abstract;
    this_var = this;
    formals;
    ret_var = ret;
    catches;
    body;
  }

let base_classes () : P.class_info array =
  [|
    { class_name = "Object"; super = None; interfaces = []; is_interface = false; declared = [] };
    {
      class_name = "A";
      super = Some 0;
      interfaces = [];
      is_interface = false;
      declared = [ (0, 0) ];
    };
    { class_name = "I"; super = None; interfaces = []; is_interface = true; declared = [] };
  |]

let wf_errors ?classes ?(fields = [||]) ?(vars = [||]) ?(heaps = [||]) ?(invos = [||]) meths
    entries =
  let classes = match classes with Some c -> c | None -> base_classes () in
  let p = P.make ~classes ~fields ~sigs:[| base_sig |] ~meths ~vars ~heaps ~invos ~entries () in
  match Wf.check p with Ok () -> [] | Error es -> es

let expect_wf_error what substring errs =
  if not (List.exists (fun e -> contains e substring) errs) then
    Alcotest.failf "%s: no error containing %S in [%s]" what substring (String.concat "; " errs)

let test_wf_ok () =
  let m = mk_meth "m" in
  check Alcotest.int "no errors" 0 (List.length (wf_errors [| m |] [ 0 ]))

let test_wf_entry_abstract () =
  let m = mk_meth ~static:false ~abstract:true "m" in
  expect_wf_error "abstract entry" "entry point" (wf_errors [| m |] [ 0 ])

let test_wf_foreign_var () =
  let vars : P.var_info array = [| { var_name = "x"; var_owner = 1 } |] in
  let m0 = mk_meth ~body:[| P.Move { target = 0; source = 0 } |] "m" in
  let m1 = mk_meth "n" in
  expect_wf_error "foreign var" "belongs to" (wf_errors ~vars [| m0; m1 |] [ 0 ])

let test_wf_alloc_interface () =
  let vars : P.var_info array = [| { var_name = "x"; var_owner = 0 } |] in
  let heaps : P.heap_info array = [| { heap_name = "h"; heap_class = 2; heap_owner = 0 } |] in
  let m = mk_meth ~body:[| P.Alloc { target = 0; heap = 0 } |] "m" in
  expect_wf_error "alloc interface" "allocation of interface"
    (wf_errors ~vars ~heaps [| m |] [ 0 ])

let test_wf_static_field_misuse () =
  let fields : P.field_info array =
    [| { field_name = "f"; field_owner = 1; is_static_field = true } |]
  in
  let vars : P.var_info array =
    [| { var_name = "x"; var_owner = 0 }; { var_name = "y"; var_owner = 0 } |]
  in
  let m = mk_meth ~body:[| P.Load { target = 0; base = 1; field = 0 } |] "m" in
  expect_wf_error "instance load of static" "instance load of static field"
    (wf_errors ~fields ~vars [| m |] [ 0 ]);
  let m2 = mk_meth ~body:[| P.Store_static { field = 0; source = 0 } |] "m" in
  check Alcotest.int "static store of static ok" 0
    (List.length (wf_errors ~fields ~vars [| m2 |] [ 0 ]))

let test_wf_instance_field_misuse () =
  let fields : P.field_info array =
    [| { field_name = "f"; field_owner = 1; is_static_field = false } |]
  in
  let vars : P.var_info array = [| { var_name = "x"; var_owner = 0 } |] in
  let m = mk_meth ~body:[| P.Load_static { target = 0; field = 0 } |] "m" in
  expect_wf_error "static load of instance" "static load of instance field"
    (wf_errors ~fields ~vars [| m |] [ 0 ])

let test_wf_call_arity () =
  let vars : P.var_info array =
    [| { var_name = "x"; var_owner = 0 }; { var_name = "b"; var_owner = 0 } |]
  in
  let invos : P.invo_info array =
    [|
      {
        call = Virtual { base = 1; signature = 0 };
        actuals = [| 0 |];
        recv = None;
        invo_owner = 0;
        invo_name = "i";
      };
    |]
  in
  let m = mk_meth ~body:[| P.Call 0 |] "m" in
  expect_wf_error "arity" "passes 1 arguments" (wf_errors ~vars ~invos [| m |] [ 0 ])

let test_wf_static_call_to_instance () =
  let invos : P.invo_info array =
    [|
      { call = Static { callee = 1 }; actuals = [||]; recv = None; invo_owner = 0; invo_name = "i" };
    |]
  in
  let vars : P.var_info array = [| { var_name = "this"; var_owner = 1 } |] in
  let m0 = mk_meth ~body:[| P.Call 0 |] "m" in
  let m1 = mk_meth ~static:false ~this:0 "n" in
  expect_wf_error "static call instance" "static call to instance method"
    (wf_errors ~vars ~invos [| m0; m1 |] [ 0 ])

let test_wf_return_without_ret_var () =
  let vars : P.var_info array = [| { var_name = "x"; var_owner = 0 } |] in
  let m = mk_meth ~body:[| P.Return { source = 0 } |] "m" in
  expect_wf_error "return" "without a return variable" (wf_errors ~vars [| m |] [ 0 ])

let test_wf_abstract_with_body () =
  let vars : P.var_info array = [| { var_name = "x"; var_owner = 0 } |] in
  let m =
    mk_meth ~static:false ~abstract:true ~body:[| P.Move { target = 0; source = 0 } |] "m"
  in
  expect_wf_error "abstract body" "abstract method with a body" (wf_errors ~vars [| m |] [ 0 ])

let test_wf_interface_concrete () =
  let classes = base_classes () in
  classes.(2) <- { (classes.(2)) with declared = [ (0, 0) ] };
  let m = mk_meth ~owner:2 "m" in
  expect_wf_error "iface concrete" "declares concrete methods" (wf_errors ~classes [| m |] [ 0 ])

let test_wf_class_extends_interface () =
  let classes = base_classes () in
  classes.(1) <- { (classes.(1)) with super = Some 2 };
  let m = mk_meth "m" in
  expect_wf_error "extends interface" "extends interface" (wf_errors ~classes [| m |] [ 0 ])

let test_wf_implements_class () =
  let classes = base_classes () in
  classes.(1) <- { (classes.(1)) with interfaces = [ 0 ] };
  let m = mk_meth "m" in
  expect_wf_error "implements class" "implements non-interface" (wf_errors ~classes [| m |] [ 0 ])

let test_wf_interface_instance_field () =
  let fields : P.field_info array =
    [| { field_name = "f"; field_owner = 2; is_static_field = false } |]
  in
  let m = mk_meth "m" in
  expect_wf_error "iface field" "declares instance field" (wf_errors ~fields [| m |] [ 0 ])

let test_wf_diagnostics_ids () =
  (* [Wf.diagnostics] carries stable per-check rule ids, in deterministic
     emission order (classes, fields, methods and bodies, entries), and
     [Wf.check] is exactly its message projection. *)
  let vars : P.var_info array = [| { var_name = "x"; var_owner = 1 } |] in
  let m0 = mk_meth ~body:[| P.Move { target = 0; source = 0 } |] "m" in
  let m1 = mk_meth ~static:false ~abstract:true "n" in
  let p =
    P.make ~classes:(base_classes ()) ~fields:[||] ~sigs:[| base_sig |] ~meths:[| m0; m1 |]
      ~vars ~heaps:[||] ~invos:[||] ~entries:[ 0; 1 ] ()
  in
  let ds = Wf.diagnostics p in
  check
    (Alcotest.list Alcotest.string)
    "rule ids in emission order"
    (* The foreign [Move] reports both of its operands, then the entry. *)
    [ "IPA-W001"; "IPA-W001"; "IPA-W020" ]
    (List.map (fun (d : Ipa_ir.Diagnostic.t) -> d.rule) ds);
  List.iter
    (fun (d : Ipa_ir.Diagnostic.t) ->
      check Alcotest.string "wf severity" "error" (Ipa_ir.Diagnostic.severity_to_string d.severity))
    ds;
  check
    (Alcotest.list Alcotest.string)
    "check is the message projection"
    (List.map (fun (d : Ipa_ir.Diagnostic.t) -> d.message) ds)
    (match Wf.check p with Ok () -> [] | Error es -> es)

(* ---------- Pretty ---------- *)

let test_pretty_instrs () =
  let p = Ipa_testlib.parse_exn Ipa_testlib.boxes_src in
  let text = Pretty.program p in
  List.iter
    (fun fragment ->
      if not (contains text fragment) then Alcotest.failf "missing fragment %S" fragment)
    [
      "class Box {";
      "field val;";
      "method set/1 (x) {";
      "this.Box::val = x;";
      "t = this.Box::val;";
      "return t;";
      "b1 = new Box;";
      "rb2 = (B) rb;";
      "entry Main::main/0;";
      "ra = b1.get();";
    ]

let test_pretty_random_stable () =
  (* print . parse . print = print on builder-produced programs *)
  for seed = 1 to 10 do
    let p = Ipa_testlib.random_program seed in
    let printed = Pretty.program p in
    match Ipa_frontend.Jir.parse_string printed with
    | Error e ->
      Alcotest.failf "seed %d: reparse failed: %s" seed (Ipa_frontend.Jir.error_to_string e)
    | Ok p2 ->
      if not (String.equal printed (Pretty.program p2)) then
        Alcotest.failf "seed %d: print.parse.print not stable" seed
  done

let () =
  Alcotest.run "ir"
    [
      ( "builder",
        [
          Alcotest.test_case "classes" `Quick test_builder_classes;
          Alcotest.test_case "method rules" `Quick test_builder_method_rules;
          Alcotest.test_case "return var" `Quick test_builder_return_var;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "subtype" `Quick test_subtype;
          Alcotest.test_case "dispatch" `Quick test_dispatch;
          Alcotest.test_case "dispatch pairs" `Quick test_dispatch_pairs_exact;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
        ] );
      ("names", [ Alcotest.test_case "full names" `Quick test_names ]);
      ( "wf",
        [
          Alcotest.test_case "well-formed ok" `Quick test_wf_ok;
          Alcotest.test_case "abstract entry" `Quick test_wf_entry_abstract;
          Alcotest.test_case "foreign var" `Quick test_wf_foreign_var;
          Alcotest.test_case "alloc interface" `Quick test_wf_alloc_interface;
          Alcotest.test_case "static field misuse" `Quick test_wf_static_field_misuse;
          Alcotest.test_case "instance field misuse" `Quick test_wf_instance_field_misuse;
          Alcotest.test_case "call arity" `Quick test_wf_call_arity;
          Alcotest.test_case "static call to instance" `Quick test_wf_static_call_to_instance;
          Alcotest.test_case "return without ret var" `Quick test_wf_return_without_ret_var;
          Alcotest.test_case "abstract with body" `Quick test_wf_abstract_with_body;
          Alcotest.test_case "interface concrete" `Quick test_wf_interface_concrete;
          Alcotest.test_case "class extends interface" `Quick test_wf_class_extends_interface;
          Alcotest.test_case "implements class" `Quick test_wf_implements_class;
          Alcotest.test_case "interface instance field" `Quick test_wf_interface_instance_field;
          Alcotest.test_case "diagnostic ids" `Quick test_wf_diagnostics_ids;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "fragments" `Quick test_pretty_instrs;
          Alcotest.test_case "random round-trip" `Quick test_pretty_random_stable;
        ] );
    ]
