(* Unit and property tests for the support data structures. *)

module Dynarr = Ipa_support.Dynarr
module Int_set = Ipa_support.Int_set
module Interner = Ipa_support.Interner
module Pair_tbl = Ipa_support.Pair_tbl
module Splitmix = Ipa_support.Splitmix
module Ascii_table = Ipa_support.Ascii_table

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- Dynarr ---------- *)

let test_dynarr_basic () =
  let d = Dynarr.create ~dummy:0 () in
  check Alcotest.bool "empty" true (Dynarr.is_empty d);
  check Alcotest.int "len 0" 0 (Dynarr.length d);
  Dynarr.push d 10;
  Dynarr.push d 20;
  check Alcotest.int "len 2" 2 (Dynarr.length d);
  check Alcotest.int "get 0" 10 (Dynarr.get d 0);
  check Alcotest.int "get 1" 20 (Dynarr.get d 1);
  Dynarr.set d 0 99;
  check Alcotest.int "set" 99 (Dynarr.get d 0);
  check Alcotest.int "push_get_index" 2 (Dynarr.push_get_index d 30);
  check (Alcotest.option Alcotest.int) "pop" (Some 30) (Dynarr.pop d);
  check Alcotest.int "len after pop" 2 (Dynarr.length d)

let test_dynarr_bounds () =
  let d = Dynarr.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Dynarr.get: index 3 out of bounds [0,3)")
    (fun () -> ignore (Dynarr.get d 3));
  Alcotest.check_raises "get neg" (Invalid_argument "Dynarr.get: index -1 out of bounds [0,3)")
    (fun () -> ignore (Dynarr.get d (-1)));
  Alcotest.check_raises "set oob" (Invalid_argument "Dynarr.set: index 5 out of bounds [0,3)")
    (fun () -> Dynarr.set d 5 0)

let test_dynarr_growth () =
  let d = Dynarr.create ~capacity:1 ~dummy:(-1) () in
  for i = 0 to 9999 do
    Dynarr.push d i
  done;
  check Alcotest.int "len" 10000 (Dynarr.length d);
  let ok = ref true in
  Dynarr.iteri (fun i x -> if i <> x then ok := false) d;
  check Alcotest.bool "contents" true !ok;
  check Alcotest.int "fold" (9999 * 10000 / 2) (Dynarr.fold_left ( + ) 0 d);
  Dynarr.clear d;
  check Alcotest.int "cleared" 0 (Dynarr.length d);
  check (Alcotest.option Alcotest.int) "pop empty" None (Dynarr.pop d)

let test_dynarr_conversions () =
  let d = Dynarr.of_list ~dummy:"" [ "a"; "b"; "c" ] in
  check (Alcotest.list Alcotest.string) "to_list" [ "a"; "b"; "c" ] (Dynarr.to_list d);
  check (Alcotest.array Alcotest.string) "to_array" [| "a"; "b"; "c" |] (Dynarr.to_array d);
  check Alcotest.bool "exists yes" true (Dynarr.exists (String.equal "b") d);
  check Alcotest.bool "exists no" false (Dynarr.exists (String.equal "z") d)

let test_dynarr_prefix () =
  let d = Dynarr.of_list ~dummy:0 [ 1; 2; 3; 4; 5 ] in
  let seen = ref [] in
  Dynarr.iter_prefix (fun x -> seen := x :: !seen) d ~n:3;
  check (Alcotest.list Alcotest.int) "prefix order" [ 1; 2; 3 ] (List.rev !seen);
  Dynarr.drop_prefix d 3;
  check (Alcotest.list Alcotest.int) "rest shifted" [ 4; 5 ] (Dynarr.to_list d);
  Dynarr.drop_prefix d 2;
  check Alcotest.int "emptied" 0 (Dynarr.length d);
  Alcotest.check_raises "iter oob" (Invalid_argument "Dynarr.iter_prefix: prefix 1 out of bounds [0,0]")
    (fun () -> Dynarr.iter_prefix ignore d ~n:1);
  Alcotest.check_raises "drop oob" (Invalid_argument "Dynarr.drop_prefix: prefix 3 out of bounds [0,0]")
    (fun () -> Dynarr.drop_prefix d 3)

let test_dynarr_prefix_push_during_iter () =
  (* The solver pushes to a node's pending batch while iterating a snapshot
     prefix of the same batch; the prefix must stay stable. *)
  let d = Dynarr.of_list ~dummy:0 [ 10; 20; 30 ] in
  let seen = ref [] in
  Dynarr.iter_prefix
    (fun x ->
      seen := x :: !seen;
      Dynarr.push d (x + 1))
    d ~n:3;
  check (Alcotest.list Alcotest.int) "snapshot prefix" [ 10; 20; 30 ] (List.rev !seen);
  check (Alcotest.list Alcotest.int) "pushes appended" [ 10; 20; 30; 11; 21; 31 ]
    (Dynarr.to_list d);
  Dynarr.drop_prefix d 3;
  check (Alcotest.list Alcotest.int) "batch consumed" [ 11; 21; 31 ] (Dynarr.to_list d)

(* ---------- Int_set ---------- *)

let test_int_set_basic () =
  let s = Int_set.create () in
  check Alcotest.bool "add new" true (Int_set.add s 5);
  check Alcotest.bool "add dup" false (Int_set.add s 5);
  check Alcotest.bool "mem" true (Int_set.mem s 5);
  check Alcotest.bool "not mem" false (Int_set.mem s 6);
  check Alcotest.int "cardinal" 1 (Int_set.cardinal s);
  check Alcotest.bool "mem zero absent" false (Int_set.mem s 0);
  ignore (Int_set.add s 0);
  check Alcotest.bool "mem zero present" true (Int_set.mem s 0);
  Alcotest.check_raises "negative" (Invalid_argument "Int_set.add: negative element") (fun () ->
      ignore (Int_set.add s (-1)))

let test_int_set_resize () =
  let s = Int_set.create ~capacity:2 () in
  for i = 0 to 99_999 do
    ignore (Int_set.add s (i * 3))
  done;
  check Alcotest.int "cardinal" 100_000 (Int_set.cardinal s);
  check Alcotest.bool "mem mid" true (Int_set.mem s 149_999 || Int_set.mem s 150_000);
  check Alcotest.bool "mem 3k" true (Int_set.mem s 299_997);
  check Alcotest.bool "non-multiple" false (Int_set.mem s 299_998)

let test_int_set_ops () =
  let a = Int_set.of_list [ 1; 2; 3 ] in
  let b = Int_set.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.bool "subset" true (Int_set.subset a b);
  check Alcotest.bool "not subset" false (Int_set.subset b a);
  check Alcotest.bool "not equal" false (Int_set.equal a b);
  let c = Int_set.copy a in
  check Alcotest.bool "copy equal" true (Int_set.equal a c);
  ignore (Int_set.add c 9);
  check Alcotest.bool "copy independent" false (Int_set.mem a 9);
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3 ] (Int_set.to_sorted_list a);
  Int_set.clear c;
  check Alcotest.int "clear" 0 (Int_set.cardinal c);
  check Alcotest.int "fold" 6 (Int_set.fold ( + ) a 0);
  check Alcotest.bool "exists" true (Int_set.exists (fun x -> x = 2) a);
  check Alcotest.bool "exists no" false (Int_set.exists (fun x -> x > 5) a)

let test_int_set_promotion () =
  let s = Int_set.create () in
  check Alcotest.bool "starts small" true (Int_set.is_small s);
  for i = 1 to 8 do
    ignore (Int_set.add s (i * 10))
  done;
  check Alcotest.bool "8 elements still small" true (Int_set.is_small s);
  (* duplicates at the boundary must not promote *)
  check Alcotest.bool "dup add" false (Int_set.add s 40);
  check Alcotest.bool "dup keeps small" true (Int_set.is_small s);
  let before = Int_set.promotion_count () in
  ignore (Int_set.add s 90);
  check Alcotest.bool "9th promotes" false (Int_set.is_small s);
  check Alcotest.int "promotion counted" (before + 1) (Int_set.promotion_count ());
  check Alcotest.int "cardinal across boundary" 9 (Int_set.cardinal s);
  for i = 1 to 9 do
    if not (Int_set.mem s (i * 10)) then Alcotest.failf "lost %d in promotion" (i * 10)
  done;
  check (Alcotest.list Alcotest.int) "sorted across reps"
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    (Int_set.to_sorted_list s);
  check Alcotest.int "fold across reps" 450 (Int_set.fold ( + ) s 0)

let test_int_set_small_rep () =
  let s = Int_set.of_list [ 5; 1; 3 ] in
  check Alcotest.bool "of_list small" true (Int_set.is_small s);
  check (Alcotest.list Alcotest.int) "kept sorted" [ 1; 3; 5 ] (Int_set.to_sorted_list s);
  let c = Int_set.copy s in
  check Alcotest.bool "copy stays small" true (Int_set.is_small c);
  ignore (Int_set.add c 2);
  check Alcotest.bool "copy independent" false (Int_set.mem s 2);
  Int_set.clear c;
  check Alcotest.int "clear small" 0 (Int_set.cardinal c);
  check Alcotest.bool "cleared mem" false (Int_set.mem c 1);
  (* explicit large capacity starts in the hash representation *)
  let big = Int_set.create ~capacity:100 () in
  check Alcotest.bool "large capacity is hash" false (Int_set.is_small big);
  let before = Int_set.promotion_count () in
  for i = 0 to 50 do
    ignore (Int_set.add big i)
  done;
  check Alcotest.int "hash rep never promotes" before (Int_set.promotion_count ())

let prop_int_set_small_vs_stdlib =
  (* Dense small values exercise the sorted-array rep and the boundary. *)
  let module S = Set.Make (Int) in
  qtest "adaptive rep matches stdlib Set near the boundary"
    QCheck2.Gen.(list_size (int_bound 20) (int_bound 12))
    (fun xs ->
      let s = Int_set.create () in
      List.iter (fun x -> ignore (Int_set.add s x)) xs;
      let reference = S.of_list xs in
      Int_set.cardinal s = S.cardinal reference
      && S.for_all (Int_set.mem s) reference
      && Int_set.to_sorted_list s = S.elements reference)

let prop_int_set_vs_stdlib =
  let module S = Set.Make (Int) in
  qtest "int_set matches stdlib Set"
    QCheck2.Gen.(list (int_bound 500))
    (fun xs ->
      let s = Int_set.create () in
      let reference =
        List.fold_left
          (fun acc x ->
            let added = Int_set.add s x in
            if added = S.mem x acc then QCheck2.Test.fail_report "add/mem disagree";
            S.add x acc)
          S.empty xs
      in
      Int_set.cardinal s = S.cardinal reference
      && S.for_all (Int_set.mem s) reference
      && List.sort_uniq compare xs = Int_set.to_sorted_list s)

(* ---------- Interner ---------- *)

let test_interner () =
  let t = Interner.create ~dummy:"" () in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  check Alcotest.int "first id" 0 a;
  check Alcotest.int "second id" 1 b;
  check Alcotest.int "dedup" a (Interner.intern t "alpha");
  check Alcotest.string "value" "beta" (Interner.value t b);
  check Alcotest.int "count" 2 (Interner.count t);
  check (Alcotest.option Alcotest.int) "find hit" (Some 0) (Interner.find_opt t "alpha");
  check (Alcotest.option Alcotest.int) "find miss" None (Interner.find_opt t "gamma");
  Alcotest.check_raises "bad id" (Invalid_argument "Interner.value: unknown id 7") (fun () ->
      ignore (Interner.value t 7))

let prop_interner_roundtrip =
  qtest "interner id/value roundtrip"
    QCheck2.Gen.(list (string_size (int_bound 6)))
    (fun keys ->
      let t = Interner.create ~dummy:"" () in
      List.for_all (fun k -> Interner.value t (Interner.intern t k) = k) keys)

(* ---------- Pair_tbl ---------- *)

let test_pair_tbl () =
  let t = Pair_tbl.create () in
  let a = Pair_tbl.intern t 3 4 in
  check Alcotest.int "dedup" a (Pair_tbl.intern t 3 4);
  check Alcotest.bool "distinct" true (a <> Pair_tbl.intern t 4 3);
  check Alcotest.int "fst" 3 (Pair_tbl.fst t a);
  check Alcotest.int "snd" 4 (Pair_tbl.snd t a);
  check Alcotest.int "count" 2 (Pair_tbl.count t);
  check (Alcotest.option Alcotest.int) "find" (Some a) (Pair_tbl.find_opt t 3 4);
  check (Alcotest.option Alcotest.int) "find miss" None (Pair_tbl.find_opt t 9 9);
  Alcotest.check_raises "range" (Invalid_argument "Pair_tbl: component out of range (-1, 0)")
    (fun () -> ignore (Pair_tbl.intern t (-1) 0))

let prop_pair_tbl_roundtrip =
  qtest "pair_tbl roundtrip"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let t = Pair_tbl.create () in
      let id = Pair_tbl.intern t a b in
      Pair_tbl.fst t id = a && Pair_tbl.snd t id = b)

(* ---------- Splitmix ---------- *)

let test_splitmix_determinism () =
  let seq seed = List.init 50 (fun _ -> Splitmix.int (Splitmix.create seed) 1000) in
  let r1 = Splitmix.create 42 and r2 = Splitmix.create 42 in
  let s1 = List.init 50 (fun _ -> Splitmix.int r1 1000) in
  let s2 = List.init 50 (fun _ -> Splitmix.int r2 1000) in
  check (Alcotest.list Alcotest.int) "same seed same stream" s1 s2;
  check Alcotest.bool "different seeds differ" true (seq 1 <> seq 2)

let test_splitmix_ranges () =
  let rng = Splitmix.create 7 in
  for _ = 1 to 1000 do
    let x = Splitmix.int rng 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of range";
    let y = Splitmix.int_in rng 5 8 in
    if y < 5 || y > 8 then Alcotest.fail "int_in out of range"
  done;
  check Alcotest.bool "chance 0" false (Splitmix.chance rng 0.0);
  check Alcotest.bool "chance 1" true (Splitmix.chance rng 1.0);
  Alcotest.check_raises "bad bound" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Splitmix.int rng 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Splitmix.int_in: empty range") (fun () ->
      ignore (Splitmix.int_in rng 3 2));
  Alcotest.check_raises "empty choose" (Invalid_argument "Splitmix.choose: empty array")
    (fun () -> ignore (Splitmix.choose rng ([||] : int array)))

let test_splitmix_shuffle () =
  let rng = Splitmix.create 11 in
  let arr = Array.init 100 Fun.id in
  Splitmix.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 100 Fun.id) sorted;
  check Alcotest.bool "actually shuffled" true (arr <> Array.init 100 Fun.id)

let test_splitmix_split () =
  let rng = Splitmix.create 3 in
  let child = Splitmix.split rng in
  let a = List.init 20 (fun _ -> Splitmix.int rng 1000) in
  let b = List.init 20 (fun _ -> Splitmix.int child 1000) in
  check Alcotest.bool "split independent" true (a <> b)

(* ---------- Ascii_table ---------- *)

(* ---------- union_find ---------- *)

module Union_find = Ipa_support.Union_find

let test_union_find_basic () =
  let uf = Union_find.create () in
  check Alcotest.bool "fresh is identity" true (Union_find.is_identity uf);
  check Alcotest.int "untouched" 41 (Union_find.find uf 41);
  Union_find.union uf ~winner:2 ~loser:7;
  check Alcotest.int "loser redirected" 2 (Union_find.find uf 7);
  check Alcotest.int "winner unchanged" 2 (Union_find.find uf 2);
  check Alcotest.bool "no longer identity" false (Union_find.is_identity uf);
  Union_find.union uf ~winner:1 ~loser:2;
  check Alcotest.int "transitive" 1 (Union_find.find uf 7);
  check Alcotest.int "merged count" 2 (Union_find.merged_count uf);
  (* growth: union far beyond current storage, lower ids stay untouched *)
  Union_find.union uf ~winner:1000 ~loser:2000;
  check Alcotest.int "high loser" 1000 (Union_find.find uf 2000);
  check Alcotest.int "between untouched" 500 (Union_find.find uf 500)

let test_union_find_errors () =
  let uf = Union_find.create () in
  let expect_invalid name f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "negative find" (fun () -> ignore (Union_find.find uf (-1)));
  Union_find.union uf ~winner:0 ~loser:1;
  expect_invalid "non-root loser" (fun () -> Union_find.union uf ~winner:2 ~loser:1);
  expect_invalid "non-root winner" (fun () -> Union_find.union uf ~winner:1 ~loser:2);
  expect_invalid "self union" (fun () -> Union_find.union uf ~winner:0 ~loser:0)

let prop_union_find_vs_naive =
  qtest ~count:100 "union_find matches a naive partition"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Splitmix.create seed in
      let n = 40 in
      let uf = Union_find.create () in
      let naive = Array.init n (fun i -> i) in
      let naive_find i = naive.(i) in
      for _ = 1 to 60 do
        let a = naive_find (Splitmix.int rng n) and b = naive_find (Splitmix.int rng n) in
        if a <> b then begin
          let winner = min a b and loser = max a b in
          Union_find.union uf ~winner ~loser;
          Array.iteri (fun i r -> if r = loser then naive.(i) <- winner) naive
        end
      done;
      Array.for_all (fun i -> Union_find.find uf i = naive_find i) (Array.init n (fun i -> i)))

(* ---------- int_heap ---------- *)

module Int_heap = Ipa_support.Int_heap

let test_int_heap_basic () =
  let h = Int_heap.create () in
  check Alcotest.bool "empty" true (Int_heap.is_empty h);
  check (Alcotest.option Alcotest.int) "pop empty" None (Int_heap.pop_min h);
  List.iter (Int_heap.push h) [ 5; 1; 4; 1; 3 ];
  check Alcotest.int "length" 5 (Int_heap.length h);
  let drained = List.init 5 (fun _ -> Option.get (Int_heap.pop_min h)) in
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 1; 3; 4; 5 ] drained;
  Int_heap.push h 9;
  Int_heap.clear h;
  check Alcotest.bool "cleared" true (Int_heap.is_empty h)

let prop_int_heap_sorts =
  qtest ~count:100 "heap drains in sorted order"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 1_000_000))
    (fun xs ->
      let h = Int_heap.create () in
      List.iter (Int_heap.push h) xs;
      let rec drain acc = match Int_heap.pop_min h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let test_ascii_table () =
  let out = Ascii_table.render ~header:[ "name"; "n" ] [ [ "a"; "10" ]; [ "bcd"; "5" ] ] in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "line count" 5 (List.length lines) (* header, rule, 2 rows, trailing *);
  check Alcotest.string "header" "name   n" (List.nth lines 0);
  check Alcotest.string "rule" "----  --" (List.nth lines 1);
  check Alcotest.string "row right-aligned" "a     10" (List.nth lines 2);
  check Alcotest.string "row2" "bcd    5" (List.nth lines 3)

let test_ascii_table_ragged () =
  let out = Ascii_table.render ~header:[ "x" ] [ [ "1"; "2" ]; [ "3" ] ] in
  check Alcotest.bool "pads ragged rows" true (String.length out > 0)

(* ---------- Timer ---------- *)

let test_timer () =
  let result, elapsed = Ipa_support.Timer.time (fun () -> 21 * 2) in
  check Alcotest.int "result" 42 result;
  check Alcotest.bool "non-negative" true (elapsed >= 0.0)

let () =
  Alcotest.run "support"
    [
      ( "dynarr",
        [
          Alcotest.test_case "basic" `Quick test_dynarr_basic;
          Alcotest.test_case "bounds" `Quick test_dynarr_bounds;
          Alcotest.test_case "growth" `Quick test_dynarr_growth;
          Alcotest.test_case "conversions" `Quick test_dynarr_conversions;
          Alcotest.test_case "prefix" `Quick test_dynarr_prefix;
          Alcotest.test_case "prefix push during iter" `Quick test_dynarr_prefix_push_during_iter;
        ] );
      ( "int_set",
        [
          Alcotest.test_case "basic" `Quick test_int_set_basic;
          Alcotest.test_case "resize" `Quick test_int_set_resize;
          Alcotest.test_case "ops" `Quick test_int_set_ops;
          Alcotest.test_case "promotion" `Quick test_int_set_promotion;
          Alcotest.test_case "small rep" `Quick test_int_set_small_rep;
          prop_int_set_small_vs_stdlib;
          prop_int_set_vs_stdlib;
        ] );
      ( "interner",
        [ Alcotest.test_case "basic" `Quick test_interner; prop_interner_roundtrip ] );
      ("pair_tbl", [ Alcotest.test_case "basic" `Quick test_pair_tbl; prop_pair_tbl_roundtrip ]);
      ( "splitmix",
        [
          Alcotest.test_case "determinism" `Quick test_splitmix_determinism;
          Alcotest.test_case "ranges" `Quick test_splitmix_ranges;
          Alcotest.test_case "shuffle" `Quick test_splitmix_shuffle;
          Alcotest.test_case "split" `Quick test_splitmix_split;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "errors" `Quick test_union_find_errors;
          prop_union_find_vs_naive;
        ] );
      ( "int_heap",
        [ Alcotest.test_case "basic" `Quick test_int_heap_basic; prop_int_heap_sorts ] );
      ( "ascii_table",
        [
          Alcotest.test_case "render" `Quick test_ascii_table;
          Alcotest.test_case "ragged" `Quick test_ascii_table_ragged;
        ] );
      ("timer", [ Alcotest.test_case "time" `Quick test_timer ]);
    ]
